//! Machine-learning substrate for the Iustitia flow-nature classifier.
//!
//! The paper classifies entropy vectors with two models, both implemented
//! here from scratch:
//!
//! * **CART decision trees** (Breiman et al. 1984) with Gini impurity and
//!   cost-complexity pruning — [`cart`].
//! * **Soft-margin SVMs** trained with Platt's SMO algorithm, with linear
//!   and RBF kernels; multi-class via **DAGSVM** (Platt et al. 2000) or
//!   one-vs-one voting — [`svm`] and [`multiclass`].
//!
//! Supporting machinery: labeled [`dataset`]s with stratified k-fold
//! cross-validation, [`metrics`] (confusion matrices, per-class accuracy
//! and misclassification rates as reported in Tables 1–2), and the two
//! [`feature_select`]ion procedures of §4.1 (CART pruning-vote and
//! Sequential Forward Search).
//!
//! # Example
//!
//! ```
//! use iustitia_ml::cart::{CartParams, DecisionTree};
//! use iustitia_ml::dataset::Dataset;
//! use iustitia_ml::Classifier;
//!
//! // A trivially separable two-class problem on one feature.
//! let mut ds = Dataset::new(1, vec!["low".into(), "high".into()]);
//! for i in 0..50 {
//!     ds.push(vec![i as f64 / 100.0], 0);
//!     ds.push(vec![0.5 + i as f64 / 100.0], 1);
//! }
//! let tree = DecisionTree::fit(&ds, &CartParams::default());
//! assert_eq!(tree.predict(&[0.1]), 0);
//! assert_eq!(tree.predict(&[0.9]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cart;
pub mod compiled;
pub mod confidence;
pub mod crossval;
pub mod dataset;
pub mod feature_select;
pub mod metrics;
pub mod multiclass;
pub mod parallel;
pub mod svm;

pub use cart::{CartParams, DecisionTree};
pub use compiled::{CompiledDag, CompiledTree, CompiledVote};
pub use confidence::{CentroidStage, ConfidenceModel};
pub use crossval::{cross_validate, cross_validate_with, CrossValReport};
pub use dataset::Dataset;
pub use metrics::ConfusionMatrix;
pub use multiclass::{DagSvm, MultiClassStrategy, OneVsOneVote};
pub use parallel::Parallelism;
pub use svm::{BinarySvm, Kernel, SvmParams};

/// A feature vector had a different width than the model was trained
/// on.
///
/// In release builds [`Kernel::eval`]'s length check compiles away, so
/// before this type existed a wrong-width vector would silently
/// zip-truncate the dot product and produce a confident wrong verdict.
/// The `try_*` prediction entry points surface the mismatch instead;
/// the infallible [`Classifier::predict`] implementations panic on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimensionMismatch {
    /// Feature count the model was trained on.
    pub expected: usize,
    /// Feature count of the offending vector.
    pub got: usize,
}

impl std::fmt::Display for DimensionMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} features, got {}", self.expected, self.got)
    }
}

impl std::error::Error for DimensionMismatch {}

/// A classifier over `f64` feature vectors producing a class index.
///
/// Implemented by [`DecisionTree`], [`DagSvm`], and [`OneVsOneVote`] so
/// that cross-validation, feature selection, and the Iustitia pipeline
/// can treat them uniformly.
pub trait Classifier {
    /// Predicts the class index for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `features` has the wrong
    /// dimensionality.
    fn predict(&self, features: &[f64]) -> usize;

    /// Number of classes this model distinguishes.
    fn n_classes(&self) -> usize;
}
