//! Classification metrics: confusion matrices and the per-class accuracy
//! / misclassification rates reported in Tables 1 and 2 of the paper.

use std::fmt;

/// A confusion matrix: `counts[actual][predicted]`.
///
/// # Examples
///
/// ```
/// use iustitia_ml::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// assert!((cm.class_accuracy(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// Creates an all-zero confusion matrix for `n_classes` classes.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        ConfusionMatrix { n_classes, counts: vec![vec![0; n_classes]; n_classes] }
    }

    /// Records one prediction.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.n_classes && predicted < self.n_classes, "class index out of range");
        self.counts[actual][predicted] += 1;
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The raw count for `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total number of recorded predictions.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Accuracy restricted to samples whose true class is `class`
    /// (recall). Returns 0 when the class never occurred.
    pub fn class_accuracy(&self, class: usize) -> f64 {
        let row: u64 = self.counts[class].iter().sum();
        if row == 0 {
            return 0.0;
        }
        self.counts[class][class] as f64 / row as f64
    }

    /// The misclassification rate of true class `from` into predicted
    /// class `to` — the off-diagonal percentages of Table 1.
    pub fn misclassification_rate(&self, from: usize, to: usize) -> f64 {
        let row: u64 = self.counts[from].iter().sum();
        if row == 0 {
            return 0.0;
        }
        self.counts[from][to] as f64 / row as f64
    }

    /// Adds another matrix of the same shape into this one (used to sum
    /// over cross-validation folds).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.n_classes, other.n_classes, "class count mismatch");
        for i in 0..self.n_classes {
            for j in 0..self.n_classes {
                self.counts[i][j] += other.counts[i][j];
            }
        }
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion matrix ({} classes, {} samples):", self.n_classes, self.total())?;
        for i in 0..self.n_classes {
            write!(f, "  actual {i}:")?;
            for j in 0..self.n_classes {
                write!(f, " {:8}", self.counts[i][j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        let mut cm = ConfusionMatrix::new(3);
        // class 0: 8 right, 1 -> 1, 1 -> 2
        for _ in 0..8 {
            cm.record(0, 0);
        }
        cm.record(0, 1);
        cm.record(0, 2);
        // class 1: 9 right, 1 -> 2
        for _ in 0..9 {
            cm.record(1, 1);
        }
        cm.record(1, 2);
        // class 2: 10 right
        for _ in 0..10 {
            cm.record(2, 2);
        }
        cm
    }

    #[test]
    fn totals_and_accuracy() {
        let cm = sample();
        assert_eq!(cm.total(), 30);
        assert!((cm.accuracy() - 27.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn per_class_rates() {
        let cm = sample();
        assert!((cm.class_accuracy(0) - 0.8).abs() < 1e-12);
        assert!((cm.class_accuracy(1) - 0.9).abs() < 1e-12);
        assert!((cm.class_accuracy(2) - 1.0).abs() < 1e-12);
        assert!((cm.misclassification_rate(0, 1) - 0.1).abs() < 1e-12);
        assert!((cm.misclassification_rate(0, 2) - 0.1).abs() < 1e-12);
        assert_eq!(cm.misclassification_rate(2, 0), 0.0);
    }

    #[test]
    fn empty_matrix_rates_are_zero() {
        let cm = ConfusionMatrix::new(2);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.class_accuracy(0), 0.0);
        assert_eq!(cm.misclassification_rate(0, 1), 0.0);
    }

    #[test]
    fn merge_sums_counts() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.total(), 60);
        assert_eq!(a.count(0, 0), 16);
    }

    #[test]
    fn display_is_nonempty() {
        let s = sample().to_string();
        assert!(s.contains("confusion matrix"));
        assert!(s.contains("actual 2"));
    }

    #[test]
    #[should_panic(expected = "class count mismatch")]
    fn merge_shape_mismatch_panics() {
        let mut a = ConfusionMatrix::new(2);
        let b = ConfusionMatrix::new(3);
        a.merge(&b);
    }

    #[test]
    fn single_class_matrix_is_all_or_nothing() {
        let mut cm = ConfusionMatrix::new(1);
        cm.record(0, 0);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.class_accuracy(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_out_of_range_panics() {
        ConfusionMatrix::new(2).record(0, 5);
    }
}
