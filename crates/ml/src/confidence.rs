//! Anytime confidence scoring for early-exit classification.
//!
//! The pipeline's fixed-`b` rule buffers every flow to `b` bytes before
//! classifying, even when the flow's nature is obvious after a few
//! hundred. A [`ConfidenceModel`] makes the early call cheap and safe:
//! it combines two signals on a *partial* feature vector —
//!
//! 1. **Centroid separation** — per-class entropy-vector centroids are
//!    fitted at a grid of prefix sizes (partial-prefix entropies drift
//!    systematically with bytes seen, so one full-`b` centroid set
//!    would misjudge early vectors). The score contrasts the distance
//!    to the predicted class's centroid against the nearest rival's.
//! 2. **Model margin** — the compiled model's own confidence (CART
//!    leaf purity, DAGSVM path margin, or one-vs-one vote spread),
//!    supplied by the caller from `try_predict_with_margin`.
//!
//! The combined score is the *minimum* of the two, so a verdict fires
//! only when the partial vector both sits in the predicted class's
//! territory and the model itself is unambiguous. The threshold is
//! calibrated offline against a held-out accuracy floor (see
//! `iustitia::model::train_anytime_from_corpus` in the core crate) and
//! travels with the model; scoring is allocation-free.

use crate::dataset::Dataset;

/// Per-class centroids fitted on feature vectors extracted from one
/// prefix size, with per-feature inverse spreads for scale-free
/// distances.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CentroidStage {
    /// Prefix size (bytes fed) this stage was fitted at.
    pub bytes: u64,
    n_classes: usize,
    n_features: usize,
    /// Row-major `n_classes × n_features` class means.
    centroids: Vec<f64>,
    /// Per-feature `1 / spread` (spread = *within-class* std-dev over
    /// the stage's training vectors, floored to keep the division
    /// finite). Within-class rather than global spread: a feature that
    /// is tight inside each class but separated across classes then
    /// dominates the distance, while a feature that is equally noisy
    /// everywhere contributes the same ~1 spread to every class and
    /// cancels out of the separation score.
    inv_spread: Vec<f64>,
}

impl CentroidStage {
    /// Fits one stage from feature vectors extracted at `bytes` fed.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    pub fn fit(bytes: u64, data: &Dataset) -> CentroidStage {
        assert!(!data.is_empty(), "cannot fit centroids on an empty dataset");
        let (nc, nf) = (data.n_classes(), data.n_features());
        let mut sums = vec![0.0f64; nc * nf];
        let mut counts = vec![0u64; nc];
        let mut mean = vec![0.0f64; nf];
        for (x, y) in data.iter() {
            counts[y] += 1;
            for (f, &v) in x.iter().enumerate() {
                sums[y * nf + f] += v;
                mean[f] += v;
            }
        }
        let n = data.len() as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut centroids = sums;
        for c in 0..nc {
            // Classes absent from this stage keep the global mean, so
            // they never look artificially close to a partial vector.
            let denom = if counts[c] == 0 { 0.0 } else { counts[c] as f64 };
            for f in 0..nf {
                if denom == 0.0 {
                    centroids[c * nf + f] = mean[f];
                } else {
                    centroids[c * nf + f] /= denom;
                }
            }
        }
        // Within-class variance, pooled over classes: deviation of each
        // vector from its own class centroid.
        let mut var = vec![0.0f64; nf];
        for (x, y) in data.iter() {
            for (f, &v) in x.iter().enumerate() {
                let d = v - centroids[y * nf + f];
                var[f] += d * d;
            }
        }
        let inv_spread = var.iter().map(|&v| 1.0 / (v / n).sqrt().max(1e-6)).collect();
        CentroidStage { bytes, n_classes: nc, n_features: nf, centroids, inv_spread }
    }

    /// Nearest-centroid prediction with its separation score: the class
    /// whose centroid is closest to `x`, and `(d_rival - d_pred) /
    /// (d_pred + d_rival)` against the runner-up, clamped to `[0, 1]`.
    /// Returns class 0 with score 0 on a foreign feature width.
    pub fn predict(&self, x: &[f64]) -> (usize, f64) {
        if x.len() != self.n_features || self.n_classes == 0 {
            return (0, 0.0);
        }
        if self.n_classes == 1 {
            return (0, 1.0);
        }
        let (mut best, mut d_best, mut d_rival) = (0, f64::INFINITY, f64::INFINITY);
        for c in 0..self.n_classes {
            let d = self.distance(x, c);
            if d < d_best {
                d_rival = d_best;
                d_best = d;
                best = c;
            } else if d < d_rival {
                d_rival = d;
            }
        }
        let denom = d_best + d_rival;
        if denom <= 0.0 || !denom.is_finite() {
            return (best, 0.0);
        }
        (best, ((d_rival - d_best) / denom).clamp(0.0, 1.0))
    }

    /// Spread-normalized L1 distance from `x` to class `c`'s centroid.
    fn distance(&self, x: &[f64], c: usize) -> f64 {
        // lint: allow(L008) — c < n_classes by the caller's loop bound and centroids has n_classes rows by fit()
        let row = &self.centroids[c * self.n_features..(c + 1) * self.n_features];
        let mut d = 0.0;
        for ((&v, &m), &inv) in x.iter().zip(row).zip(&self.inv_spread) {
            d += (v - m).abs() * inv;
        }
        d
    }
}

/// A calibrated anytime-confidence model: centroid stages over a grid
/// of prefix sizes plus the emission threshold, serialized alongside
/// the `NatureModel` it was calibrated for.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceModel {
    /// Stages in strictly ascending `bytes` order.
    stages: Vec<CentroidStage>,
    /// Emission threshold: a probe fires when `score >= threshold`.
    /// Values above 1.0 can never fire (scores are clamped to `[0, 1]`).
    threshold: f64,
    /// Per-class byte floors: a probe predicting class `c` scores 0
    /// below `class_floor[c]` bytes fed. Calibrated because early
    /// errors concentrate in specific predicted classes (high-entropy
    /// compressed prefixes read as encrypted below a few hundred
    /// bytes). Empty = no floors.
    class_floor: Vec<u64>,
    /// Trusted-stage mark: at or past this many bytes fed, probes score
    /// 1.0 (maximally confident) regardless of centroid separation —
    /// calibrated to the stage where the stage model's held-out
    /// accuracy reaches the full-`b` model's, so waiting longer cannot
    /// buy accuracy. `u64::MAX` = never trusted.
    trusted_bytes: u64,
}

impl ConfidenceModel {
    /// Builds a model from fitted stages and an emission threshold.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty, not strictly ascending in `bytes`,
    /// or disagrees on feature/class counts.
    pub fn new(stages: Vec<CentroidStage>, threshold: f64) -> ConfidenceModel {
        assert!(!stages.is_empty(), "confidence model needs at least one stage");
        for w in stages.windows(2) {
            assert!(w[0].bytes < w[1].bytes, "stages must be strictly ascending in bytes");
            assert_eq!(w[0].n_features, w[1].n_features, "stage feature widths differ");
            assert_eq!(w[0].n_classes, w[1].n_classes, "stage class counts differ");
        }
        ConfidenceModel { stages, threshold, class_floor: Vec::new(), trusted_bytes: u64::MAX }
    }

    /// Fits one stage per `(bytes, dataset)` pair (ascending `bytes`)
    /// with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics under the conditions of [`ConfidenceModel::new`] and
    /// [`CentroidStage::fit`].
    pub fn fit(stage_data: &[(u64, &Dataset)], threshold: f64) -> ConfidenceModel {
        let stages = stage_data.iter().map(|&(bytes, ds)| CentroidStage::fit(bytes, ds)).collect();
        ConfidenceModel::new(stages, threshold)
    }

    /// The calibrated emission threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Replaces the threshold (used by calibration sweeps and to pin
    /// the model open or shut in tests).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Installs the calibrated exit policy: per-class byte floors and
    /// the trusted-stage mark (see the field docs). Pass an empty floor
    /// vector and `u64::MAX` to clear.
    ///
    /// # Panics
    ///
    /// Panics if `class_floor` is non-empty and its length differs from
    /// the fitted class count.
    pub fn set_exit_policy(&mut self, class_floor: Vec<u64>, trusted_bytes: u64) {
        assert!(
            class_floor.is_empty() || class_floor.len() == self.n_classes(),
            "one floor per fitted class"
        );
        self.class_floor = class_floor;
        self.trusted_bytes = trusted_bytes;
    }

    /// The per-class byte floors (empty when no floors are set).
    pub fn class_floor(&self) -> &[u64] {
        &self.class_floor
    }

    /// The trusted-stage mark (`u64::MAX` when never trusted).
    pub fn trusted_bytes(&self) -> u64 {
        self.trusted_bytes
    }

    /// Applies the exit policy to a raw score: 1.0 at or past the
    /// trusted mark, 0.0 below the predicted class's byte floor, the
    /// raw score otherwise. Exposed so offline calibration can replay
    /// candidate policies over precomputed raw scores with exactly the
    /// semantics the pipeline sees.
    pub fn apply_policy(&self, raw: f64, fed: u64, predicted: usize) -> f64 {
        if fed >= self.trusted_bytes {
            return 1.0;
        }
        match self.class_floor.get(predicted) {
            Some(&floor) if fed < floor => 0.0,
            _ => raw,
        }
    }

    /// Feature-vector width the stages were fitted on.
    pub fn n_features(&self) -> usize {
        // lint: allow(L008) — fit() rejects empty stage lists, so stages[0] exists
        self.stages[0].n_features
    }

    /// Number of classes the stages were fitted on.
    pub fn n_classes(&self) -> usize {
        self.stages[0].n_classes
    }

    /// Smallest prefix size any stage covers — probing below this is
    /// pointless (the first stage would be extrapolating).
    pub fn min_stage_bytes(&self) -> u64 {
        self.stages[0].bytes
    }

    /// The fitted stages, ascending in `bytes`.
    pub fn stages(&self) -> &[CentroidStage] {
        &self.stages
    }

    /// The stage fitted nearest below `fed` bytes (the first stage when
    /// `fed` undershoots them all).
    fn stage_for(&self, fed: u64) -> &CentroidStage {
        // lint: allow(L008) — fit() rejects empty stage lists, so stages[0] exists
        let mut best = &self.stages[0];
        for s in &self.stages {
            if s.bytes <= fed {
                best = s;
            } else {
                break;
            }
        }
        best
    }

    /// Scores a partial feature vector in `[0, 1]`: the minimum of the
    /// centroid-separation score at the stage matching `fed` bytes and
    /// the model `margin` the caller got from `try_predict_with_margin`,
    /// filtered through the calibrated exit policy ([`Self::apply_policy`]).
    /// Allocation-free; `predicted` out of range or a foreign feature
    /// width scores 0 (never confident) instead of panicking.
    pub fn score(&self, features: &[f64], fed: u64, predicted: usize, margin: f64) -> f64 {
        let stage = self.stage_for(fed);
        if predicted >= stage.n_classes || features.len() != stage.n_features {
            return 0.0;
        }
        self.apply_policy(self.raw_score(features, fed, predicted, margin), fed, predicted)
    }

    /// The policy-free confidence score (centroid separation capped by
    /// the model margin). Calibration sweeps exit policies over raw
    /// scores precomputed once per probe; the pipeline uses
    /// [`Self::score`], which is `apply_policy(raw_score(..))`.
    pub fn raw_score(&self, features: &[f64], fed: u64, predicted: usize, margin: f64) -> f64 {
        let stage = self.stage_for(fed);
        if predicted >= stage.n_classes || features.len() != stage.n_features {
            return 0.0;
        }
        let centroid_score = if stage.n_classes < 2 {
            1.0
        } else {
            let d_pred = stage.distance(features, predicted);
            let mut d_rival = f64::INFINITY;
            for c in 0..stage.n_classes {
                if c != predicted {
                    d_rival = d_rival.min(stage.distance(features, c));
                }
            }
            let denom = d_pred + d_rival;
            if denom <= 0.0 || !denom.is_finite() {
                0.0
            } else {
                ((d_rival - d_pred) / denom).clamp(0.0, 1.0)
            }
        };
        centroid_score.min(margin.clamp(0.0, 1.0))
    }

    /// Whether a score clears the calibrated threshold.
    pub fn confident(&self, score: f64) -> bool {
        score >= self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated classes in 2-D at two prefix stages.
    fn toy_model(threshold: f64) -> ConfidenceModel {
        let mut early = Dataset::new(2, vec!["a".into(), "b".into()]);
        let mut late = Dataset::new(2, vec!["a".into(), "b".into()]);
        for i in 0..20 {
            let jitter = i as f64 / 200.0;
            early.push(vec![0.2 + jitter, 0.2], 0);
            early.push(vec![0.8 + jitter, 0.8], 1);
            late.push(vec![0.3 + jitter, 0.3], 0);
            late.push(vec![0.9 + jitter, 0.9], 1);
        }
        ConfidenceModel::fit(&[(64, &early), (512, &late)], threshold)
    }

    #[test]
    fn obvious_vectors_score_high_and_ambiguous_score_low() {
        let m = toy_model(0.5);
        let clear = m.score(&[0.2, 0.2], 64, 0, 1.0);
        let midpoint = m.score(&[0.5, 0.5], 64, 0, 1.0);
        assert!(clear > 0.9, "centroid hit scores near 1: {clear}");
        assert!(midpoint < 0.1, "midpoint scores near 0: {midpoint}");
        assert!(m.confident(clear));
        assert!(!m.confident(midpoint));
    }

    #[test]
    fn margin_caps_the_score() {
        let m = toy_model(0.5);
        let capped = m.score(&[0.2, 0.2], 64, 0, 0.25);
        assert_eq!(capped, 0.25, "an unsure model vetoes a confident centroid");
    }

    #[test]
    fn stage_selection_tracks_bytes_fed() {
        let m = toy_model(0.5);
        // [0.3, 0.3] is class a's *late* centroid; at the early stage it
        // sits off-center, so the late stage must score it higher.
        let early = m.score(&[0.3, 0.3], 64, 0, 1.0);
        let late = m.score(&[0.3, 0.3], 512, 0, 1.0);
        assert!(late > early, "late {late} vs early {early}");
        // Below every stage, the first stage is used.
        assert_eq!(m.score(&[0.3, 0.3], 1, 0, 1.0), early);
        assert_eq!(m.min_stage_bytes(), 64);
    }

    #[test]
    fn mismatched_inputs_are_never_confident() {
        let m = toy_model(0.0);
        assert_eq!(m.score(&[0.2, 0.2, 0.2], 64, 0, 1.0), 0.0, "wrong width");
        assert_eq!(m.score(&[0.2, 0.2], 64, 7, 1.0), 0.0, "label out of range");
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        let m = toy_model(0.5);
        for &x in &[-5.0, 0.0, 0.5, 1.0, 5.0] {
            for &y in &[-5.0, 0.5, 5.0] {
                for pred in 0..2 {
                    let s = m.score(&[x, y], 64, pred, 1.0);
                    assert!((0.0..=1.0).contains(&s), "score({x},{y},{pred}) = {s}");
                }
            }
        }
    }

    #[test]
    fn threshold_above_one_never_fires() {
        let mut m = toy_model(2.0);
        assert!(!m.confident(m.score(&[0.2, 0.2], 64, 0, 1.0)));
        m.set_threshold(0.0);
        assert!(m.confident(0.0));
        assert_eq!(m.threshold(), 0.0);
    }

    #[test]
    fn exit_policy_floors_and_trusted_mark() {
        let mut m = toy_model(0.5);
        let clear = m.score(&[0.2, 0.2], 64, 0, 1.0);
        assert!(clear > 0.9);
        // Class 0 floored at 512 bytes: the same vector scores 0 below
        // the floor, and the raw score again at it. Class 1 unfloored.
        m.set_exit_policy(vec![512, 0], u64::MAX);
        assert_eq!(m.score(&[0.2, 0.2], 64, 0, 1.0), 0.0);
        assert!(m.score(&[0.2, 0.2], 512, 0, 1.0) > 0.0);
        assert!(m.score(&[0.8, 0.8], 64, 1, 1.0) > 0.9);
        // Trusted mark: past it every in-range probe scores 1.0, even
        // an ambiguous midpoint — but a foreign width still scores 0.
        m.set_exit_policy(Vec::new(), 512);
        assert_eq!(m.score(&[0.5, 0.5], 512, 0, 0.1), 1.0);
        assert!(m.score(&[0.5, 0.5], 64, 0, 0.1) < 1.0);
        assert_eq!(m.score(&[0.5, 0.5, 0.5], 512, 0, 1.0), 0.0);
        // raw_score ignores the policy.
        m.set_exit_policy(vec![512, 512], u64::MAX);
        assert!(m.raw_score(&[0.2, 0.2], 64, 0, 1.0) > 0.9);
    }

    #[test]
    fn serde_round_trip() {
        let m = toy_model(0.61);
        let json = serde_json::to_string(&m).expect("serialize");
        let back: ConfidenceModel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, m);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unordered_stages_panic() {
        let mut ds = Dataset::new(1, vec!["a".into()]);
        ds.push(vec![0.5], 0);
        let s1 = CentroidStage::fit(512, &ds);
        let s2 = CentroidStage::fit(64, &ds);
        ConfidenceModel::new(vec![s1, s2], 0.5);
    }
}
