//! The two feature-selection procedures of §4.1.
//!
//! * **CART pruning-vote** ([`cart_vote_selection`]): on each of `k`
//!   cross-validation splits, grow a tree, prune it until just before a
//!   2% validation-accuracy decrease, and record which features the
//!   pruned tree still uses (weighted by height — "the higher a feature
//!   is in a tree, the more effective it is"). Features with the most
//!   votes are selected. On the paper's data this yields
//!   `φ_CART = {h1, h3, h4, h10}`.
//! * **Sequential Forward Search** ([`sequential_forward_search`],
//!   Somol et al. 1999): start from the empty feature set; each round,
//!   add the single feature that maximizes cross-validated accuracy of
//!   the wrapped classifier; stop after `n'` features. On the paper's
//!   data with an SVM wrapper this yields `φ_SVM = {h1, h2, h3, h9}`.

use crate::cart::{CartParams, DecisionTree};
use crate::crossval::cross_validate_with;
use crate::dataset::Dataset;
use crate::parallel::{run_indexed, Parallelism};
use crate::Classifier;

/// Result of a feature-selection run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectionResult {
    /// Selected feature column indices, ascending.
    pub selected: Vec<usize>,
    /// The vote/score each feature accumulated (indexed by column).
    pub scores: Vec<f64>,
}

/// CART pruning-vote feature selection over `k` cross-validation splits.
///
/// Returns the `n_select` features with the highest accumulated
/// importance across the pruned per-fold trees.
///
/// # Panics
///
/// Panics if `n_select` is 0 or exceeds the feature count, or if
/// `k < 2`.
pub fn cart_vote_selection(
    data: &Dataset,
    k: usize,
    seed: u64,
    params: &CartParams,
    max_accuracy_drop: f64,
    n_select: usize,
) -> SelectionResult {
    assert!(n_select >= 1 && n_select <= data.n_features(), "invalid n_select");
    let folds = data.stratified_folds(k, seed);
    let mut scores = vec![0.0f64; data.n_features()];
    for held_out in 0..k {
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(f, _)| f != held_out)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        let train = data.subset(&train_idx);
        let val = data.subset(&folds[held_out]);
        let tree = DecisionTree::fit(&train, params);
        let pruned = tree.pruned_within(&val, max_accuracy_drop);
        for (f, imp) in pruned.feature_importance().iter().enumerate() {
            scores[f] += imp;
        }
    }
    let selected = top_n(&scores, n_select);
    SelectionResult { selected, scores }
}

/// Sequential Forward Search wrapping an arbitrary classifier trainer.
///
/// `train` builds a classifier from a dataset already projected onto the
/// candidate feature subset; each candidate subset is scored by
/// `k`-fold cross-validated accuracy.
///
/// # Panics
///
/// Panics if `n_select` is 0 or exceeds the feature count, or if
/// `k < 2`.
pub fn sequential_forward_search<C, F>(
    data: &Dataset,
    n_select: usize,
    k: usize,
    seed: u64,
    train: F,
) -> SelectionResult
where
    C: Classifier,
    F: Fn(&Dataset) -> C + Sync,
{
    sequential_forward_search_with(data, n_select, k, seed, Parallelism::auto(), train)
}

/// [`sequential_forward_search`] with an explicit worker-thread budget.
///
/// Each round's candidate evaluations are independent full
/// cross-validation runs, so they go to worker threads (the inner
/// cross-validation runs serially to keep the worker count bounded).
/// Candidate scores come back in candidate order and the winner is
/// picked by the historical ascending-index scan with strict `>`
/// improvement, so the thread count never changes the selection — see
/// [`crate::parallel`].
///
/// # Panics
///
/// Panics if `n_select` is 0 or exceeds the feature count, or if
/// `k < 2`.
pub fn sequential_forward_search_with<C, F>(
    data: &Dataset,
    n_select: usize,
    k: usize,
    seed: u64,
    parallelism: Parallelism,
    train: F,
) -> SelectionResult
where
    C: Classifier,
    F: Fn(&Dataset) -> C + Sync,
{
    assert!(n_select >= 1 && n_select <= data.n_features(), "invalid n_select");
    let threads = parallelism.resolve();
    let mut selected: Vec<usize> = Vec::new();
    let mut scores = vec![0.0f64; data.n_features()];
    while selected.len() < n_select {
        let accs: Vec<Option<f64>> = run_indexed(threads, data.n_features(), |cand| {
            if selected.contains(&cand) {
                return None;
            }
            let mut cols = selected.clone();
            cols.push(cand);
            cols.sort_unstable();
            let projected = data.select_features(&cols);
            let report = cross_validate_with(&projected, k, seed, Parallelism::serial(), &train);
            Some(report.mean_accuracy())
        });
        let mut best: Option<(usize, f64)> = None;
        for (cand, acc) in accs.into_iter().enumerate() {
            if let Some(acc) = acc {
                if best.is_none_or(|(_, b)| acc > b) {
                    best = Some((cand, acc));
                }
            }
        }
        let Some((chosen, acc)) = best else {
            unreachable!("selected.len() < n_select <= n_features leaves a candidate")
        };
        scores[chosen] = acc;
        selected.push(chosen);
    }
    selected.sort_unstable();
    SelectionResult { selected, scores }
}

/// Indices of the `n` largest scores, ascending by index.
fn top_n(scores: &[f64], n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut sel: Vec<usize> = idx.into_iter().take(n).collect();
    sel.sort_unstable();
    sel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::CartParams;

    /// 4 features; only features 0 and 2 carry signal.
    fn signal_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(4, vec!["a".into(), "b".into()]);
        let mut v = 0.17f64;
        for _ in 0..n {
            let mut row = [0.0f64; 4];
            for r in &mut row {
                v = (v * 733.21).fract();
                *r = v;
            }
            let label = usize::from(row[0] + row[2] > 1.0);
            ds.push(row.to_vec(), label);
        }
        ds
    }

    #[test]
    fn top_n_orders_by_score() {
        assert_eq!(top_n(&[0.1, 0.9, 0.5, 0.7], 2), vec![1, 3]);
        assert_eq!(top_n(&[1.0, 0.0], 1), vec![0]);
    }

    #[test]
    fn cart_vote_finds_signal_features() {
        let ds = signal_dataset(600);
        let res = cart_vote_selection(&ds, 5, 3, &CartParams::default(), 0.02, 2);
        assert_eq!(res.selected, vec![0, 2], "scores={:?}", res.scores);
        assert!(res.scores[0] > res.scores[1]);
        assert!(res.scores[2] > res.scores[3]);
    }

    #[test]
    fn sfs_finds_signal_features() {
        let ds = signal_dataset(400);
        let res = sequential_forward_search(&ds, 2, 4, 5, |train| {
            DecisionTree::fit(train, &CartParams::default())
        });
        assert_eq!(res.selected, vec![0, 2], "scores={:?}", res.scores);
    }

    #[test]
    fn sfs_selects_requested_count() {
        let ds = signal_dataset(200);
        let res = sequential_forward_search(&ds, 3, 3, 9, |train| {
            DecisionTree::fit(train, &CartParams::default())
        });
        assert_eq!(res.selected.len(), 3);
        // ascending order
        assert!(res.selected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn selecting_all_features_returns_all() {
        let ds = signal_dataset(150);
        let res = sequential_forward_search(&ds, 4, 3, 1, |train| {
            DecisionTree::fit(train, &CartParams::default())
        });
        assert_eq!(res.selected, vec![0, 1, 2, 3]);
        let res = cart_vote_selection(&ds, 3, 1, &CartParams::default(), 0.02, 4);
        assert_eq!(res.selected, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_feature_selection_picks_a_signal_column() {
        let ds = signal_dataset(400);
        let res = sequential_forward_search(&ds, 1, 3, 2, |train| {
            DecisionTree::fit(train, &CartParams::default())
        });
        assert!(res.selected == vec![0] || res.selected == vec![2], "got {:?}", res.selected);
    }

    #[test]
    #[should_panic(expected = "invalid n_select")]
    fn zero_select_panics() {
        let ds = signal_dataset(50);
        cart_vote_selection(&ds, 3, 0, &CartParams::default(), 0.02, 0);
    }

    #[test]
    fn parallel_sfs_is_bit_identical_to_serial() {
        let ds = signal_dataset(300);
        let train = |t: &Dataset| DecisionTree::fit(t, &CartParams::default());
        let serial =
            sequential_forward_search_with(&ds, 3, 4, 5, crate::Parallelism::serial(), train);
        let parallel =
            sequential_forward_search_with(&ds, 3, 4, 5, crate::Parallelism::fixed(4), train);
        assert_eq!(serial, parallel);
    }
}
