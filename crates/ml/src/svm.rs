//! Soft-margin support vector machines trained with Platt's SMO.
//!
//! The paper's best classifier is an SVM with a Radial Basis Function
//! kernel (`γ = 50`, `C = 1000` for exact entropy vectors; `γ = 10`
//! after re-selection for estimated vectors, §4.4.2). Binary SVMs are
//! trained here with Sequential Minimal Optimization (Platt 1998) using
//! the standard error-cache and second-choice heuristics; multi-class
//! combination lives in [`crate::multiclass`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::Dataset;
use crate::parallel::{run_indexed, Parallelism};
use crate::DimensionMismatch;

/// A kernel function for the SVM.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Kernel {
    /// `K(x, y) = x·y`.
    Linear,
    /// `K(x, y) = exp(−γ·‖x − y‖²)` — the paper's choice.
    Rbf {
        /// The width parameter `γ`.
        gamma: f64,
    },
}

impl Kernel {
    /// Evaluates the kernel on two feature vectors.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the vectors have different lengths.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        match *self {
            Kernel::Linear => x.iter().zip(y).map(|(a, b)| a * b).sum(),
            Kernel::Rbf { gamma } => {
                let d2: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Training parameters for [`BinarySvm::fit`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SvmParams {
    /// Soft-margin penalty `C`.
    pub c: f64,
    /// Kernel.
    pub kernel: Kernel,
    /// KKT violation tolerance.
    pub tol: f64,
    /// Maximum number of full passes without progress before stopping.
    pub max_passes: usize,
    /// Hard cap on optimization iterations (each examines one sample).
    pub max_iters: usize,
    /// RNG seed for the second-multiplier heuristic's tie-breaking.
    pub seed: u64,
    /// Worker threads for the deterministic parallel parts of training
    /// (kernel-matrix rows; pairwise fits in [`crate::multiclass`]).
    /// Never affects results — see [`crate::parallel`].
    pub parallelism: Parallelism,
}

impl SvmParams {
    /// The paper's model for exact entropy vectors: RBF, `γ=50`, `C=1000`.
    pub fn paper_rbf() -> Self {
        SvmParams { c: 1000.0, kernel: Kernel::Rbf { gamma: 50.0 }, ..Default::default() }
    }

    /// The paper's re-selected model for `(δ,ε)`-estimated vectors:
    /// RBF, `γ=10`, `C=1000` (§4.4.2).
    pub fn paper_rbf_estimated() -> Self {
        SvmParams { c: 1000.0, kernel: Kernel::Rbf { gamma: 10.0 }, ..Default::default() }
    }
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 1.0,
            kernel: Kernel::Rbf { gamma: 1.0 },
            tol: 1e-3,
            max_passes: 5,
            max_iters: 3_000_000,
            seed: 0x5EED,
            parallelism: Parallelism::auto(),
        }
    }
}

/// A trained binary SVM: `f(x) = Σᵢ αᵢ·yᵢ·K(xᵢ, x) + b`, predicting the
/// positive class when `f(x) ≥ 0`.
///
/// Only support vectors (samples with `αᵢ > 0`) are retained.
///
/// # Examples
///
/// ```
/// use iustitia_ml::svm::{BinarySvm, Kernel, SvmParams};
///
/// let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0]).collect();
/// let ys: Vec<bool> = (0..40).map(|i| i >= 20).collect();
/// let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
/// let svm = BinarySvm::fit(&xs, &ys, &params);
/// assert!(!svm.predict(&[0.1]));
/// assert!(svm.predict(&[0.9]));
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BinarySvm {
    support_vectors: Vec<Vec<f64>>,
    /// `αᵢ·yᵢ` for each support vector.
    coefficients: Vec<f64>,
    bias: f64,
    kernel: Kernel,
    n_features: usize,
}

impl BinarySvm {
    /// Trains on `samples` with boolean labels (`true` = positive class)
    /// using SMO.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, lengths mismatch, or only one class
    /// is present.
    pub fn fit(samples: &[Vec<f64>], labels: &[bool], params: &SvmParams) -> Self {
        assert_eq!(samples.len(), labels.len(), "samples/labels length mismatch");
        assert!(!samples.is_empty(), "cannot train on an empty set");
        assert!(
            labels.iter().any(|&l| l) && labels.iter().any(|&l| !l),
            "training set must contain both classes"
        );
        let n = samples.len();
        let n_features = samples[0].len();
        assert!(
            samples.iter().all(|s| s.len() == n_features),
            "all samples must share one feature width"
        );
        let y: Vec<f64> = labels.iter().map(|&l| if l { 1.0 } else { -1.0 }).collect();

        // Precompute the kernel matrix when affordable (n ≤ 2896 →
        // ≤ 64 MiB of f64); otherwise evaluate on demand. Full f64
        // precision matters: the error cache is maintained incrementally
        // and rounding noise above `tol` stalls convergence.
        //
        // Rows parallelize deterministically: each cell is one pure
        // `Kernel::eval` written exactly once, so the thread count
        // cannot change a single bit of the matrix. The SMO loop itself
        // stays serial — its RNG-driven second-choice heuristic is a
        // sequential dependence.
        let precomputed: Option<Vec<f64>> = if n <= 2896 {
            let threads = params.parallelism.resolve();
            let rows: Vec<Vec<f64>> = run_indexed(threads, n, |i| {
                (i..n).map(|j| params.kernel.eval(&samples[i], &samples[j])).collect()
            });
            let mut k = vec![0f64; n * n];
            for (i, row) in rows.iter().enumerate() {
                for (off, &v) in row.iter().enumerate() {
                    let j = i + off;
                    k[i * n + j] = v;
                    k[j * n + i] = v;
                }
            }
            Some(k)
        } else {
            None
        };
        let kern = |i: usize, j: usize| -> f64 {
            match &precomputed {
                Some(k) => k[i * n + j],
                None => params.kernel.eval(&samples[i], &samples[j]),
            }
        };

        /// One SMO pair update (Platt 1998, eqs. 12-19). Returns true
        /// if the pair made progress.
        #[allow(clippy::too_many_arguments)]
        fn smo_step(
            i: usize,
            j: usize,
            y: &[f64],
            alpha: &mut [f64],
            err: &mut [f64],
            b: &mut f64,
            c: f64,
            kern: &impl Fn(usize, usize) -> f64,
        ) -> bool {
            if i == j {
                return false;
            }
            let (e_i, e_j) = (err[i], err[j]);
            let (a_i_old, a_j_old) = (alpha[i], alpha[j]);
            let (lo, hi) = if (y[i] - y[j]).abs() > f64::EPSILON {
                let d = a_j_old - a_i_old;
                (d.max(0.0), (c + d).min(c))
            } else {
                let s = a_i_old + a_j_old;
                ((s - c).max(0.0), s.min(c))
            };
            if (hi - lo).abs() < 1e-12 {
                return false;
            }
            let eta = 2.0 * kern(i, j) - kern(i, i) - kern(j, j);
            if eta >= 0.0 {
                return false;
            }
            let mut a_j = a_j_old - y[j] * (e_i - e_j) / eta;
            a_j = a_j.clamp(lo, hi);
            if (a_j - a_j_old).abs() < 1e-7 * (a_j + a_j_old + 1e-7) {
                return false;
            }
            let a_i = a_i_old + y[i] * y[j] * (a_j_old - a_j);

            let b1 = *b
                - e_i
                - y[i] * (a_i - a_i_old) * kern(i, i)
                - y[j] * (a_j - a_j_old) * kern(i, j);
            let b2 = *b
                - e_j
                - y[i] * (a_i - a_i_old) * kern(i, j)
                - y[j] * (a_j - a_j_old) * kern(j, j);
            let new_b = if a_i > 0.0 && a_i < c {
                b1
            } else if a_j > 0.0 && a_j < c {
                b2
            } else {
                0.5 * (b1 + b2)
            };

            // Incremental error-cache update.
            let di = y[i] * (a_i - a_i_old);
            let dj = y[j] * (a_j - a_j_old);
            let db = new_b - *b;
            for (t, e) in err.iter_mut().enumerate() {
                *e += di * kern(i, t) + dj * kern(j, t) + db;
            }
            alpha[i] = a_i;
            alpha[j] = a_j;
            *b = new_b;
            true
        }

        /// Platt's second-choice hierarchy: best |E_i - E_j| over the
        /// non-bound set, then the rest of the non-bound set from a
        /// random start, then all samples from a random start.
        #[allow(clippy::too_many_arguments)]
        fn examine(
            i: usize,
            n: usize,
            tol: f64,
            c: f64,
            y: &[f64],
            alpha: &mut [f64],
            err: &mut [f64],
            b: &mut f64,
            kern: &impl Fn(usize, usize) -> f64,
            rng: &mut StdRng,
        ) -> bool {
            let e_i = err[i];
            let r_i = e_i * y[i];
            if !((r_i < -tol && alpha[i] < c) || (r_i > tol && alpha[i] > 0.0)) {
                return false; // KKT satisfied within tolerance
            }
            // 1. Best-gap partner among non-bound multipliers.
            let mut best: Option<(usize, f64)> = None;
            for cand in 0..n {
                if cand != i && alpha[cand] > 0.0 && alpha[cand] < c {
                    let gap = (e_i - err[cand]).abs();
                    if best.is_none_or(|(_, g)| gap > g) {
                        best = Some((cand, gap));
                    }
                }
            }
            if let Some((j, _)) = best {
                if smo_step(i, j, y, alpha, err, b, c, kern) {
                    return true;
                }
            }
            // 2. Remaining non-bound multipliers, random start.
            let start = rng.gen_range(0..n);
            for off in 0..n {
                let j = (start + off) % n;
                if j != i
                    && alpha[j] > 0.0
                    && alpha[j] < c
                    && smo_step(i, j, y, alpha, err, b, c, kern)
                {
                    return true;
                }
            }
            // 3. The entire training set, random start.
            let start = rng.gen_range(0..n);
            for off in 0..n {
                let j = (start + off) % n;
                if j != i && smo_step(i, j, y, alpha, err, b, c, kern) {
                    return true;
                }
            }
            false
        }

        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: E_i = f(x_i) - y_i, maintained incrementally.
        let mut err: Vec<f64> = y.iter().map(|&yi| -yi).collect();
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut iters = 0usize;

        // Platt's outer loop: alternate full sweeps with sweeps over the
        // non-bound subset until a full sweep makes no progress.
        let mut examine_all = true;
        let mut no_progress_full_sweeps = 0usize;
        loop {
            if examine_all {
                // Rebuild the error cache from the multipliers at every
                // full sweep: incremental updates accumulate rounding
                // drift that can stall or misdirect the KKT checks.
                for t in 0..n {
                    let mut f = b;
                    for s in 0..n {
                        if alpha[s] > 0.0 {
                            f += alpha[s] * y[s] * kern(s, t);
                        }
                    }
                    err[t] = f - y[t];
                }
            }
            let mut changed = 0usize;
            for i in 0..n {
                iters += 1;
                if iters >= params.max_iters {
                    break;
                }
                let non_bound = alpha[i] > 0.0 && alpha[i] < params.c;
                if !examine_all && !non_bound {
                    continue;
                }
                if examine(
                    i, n, params.tol, params.c, &y, &mut alpha, &mut err, &mut b, &kern, &mut rng,
                ) {
                    changed += 1;
                }
            }
            if iters >= params.max_iters {
                break;
            }
            if examine_all {
                if changed == 0 {
                    no_progress_full_sweeps += 1;
                    if no_progress_full_sweeps >= params.max_passes.max(1) {
                        break;
                    }
                } else {
                    no_progress_full_sweeps = 0;
                }
                examine_all = false;
            } else if changed == 0 {
                examine_all = true;
            }
        }
        // Recompute the bias from the margin support vectors
        // (0 < α < C): at the optimum each satisfies y_i·f(x_i) = 1, so
        // averaging their implied biases is far more robust than the
        // incremental estimate when most multipliers sit at the C bound
        // (common at large C on overlapping classes).
        let margin: Vec<usize> =
            (0..n).filter(|&i| alpha[i] > 1e-9 && alpha[i] < params.c - 1e-9).collect();
        if !margin.is_empty() {
            let correction: f64 = margin.iter().map(|&i| err[i]).sum::<f64>() / margin.len() as f64;
            b -= correction;
        }

        let mut support_vectors = Vec::new();
        let mut coefficients = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-9 {
                support_vectors.push(samples[i].clone());
                coefficients.push(alpha[i] * y[i]);
            }
        }
        BinarySvm { support_vectors, coefficients, bias: b, kernel: params.kernel, n_features }
    }

    /// Trains a one-vs-one binary SVM on two classes of a [`Dataset`],
    /// with `pos_class` as the positive label.
    ///
    /// # Panics
    ///
    /// Panics if either class has no samples.
    pub fn fit_pair(
        data: &Dataset,
        pos_class: usize,
        neg_class: usize,
        params: &SvmParams,
    ) -> Self {
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for (x, y) in data.iter() {
            if y == pos_class {
                samples.push(x.to_vec());
                labels.push(true);
            } else if y == neg_class {
                samples.push(x.to_vec());
                labels.push(false);
            }
        }
        BinarySvm::fit(&samples, &labels, params)
    }

    /// The decision value `f(x)`, or a typed error on a wrong-width
    /// vector.
    ///
    /// [`Kernel::eval`]'s own length check is `debug_assert!`-only, so
    /// in release builds a wrong-width vector would silently
    /// zip-truncate to a wrong-but-confident value; this boundary check
    /// runs in every build.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_decision_value(&self, features: &[f64]) -> Result<f64, DimensionMismatch> {
        if features.len() != self.n_features {
            return Err(DimensionMismatch { expected: self.n_features, got: features.len() });
        }
        let mut f = self.bias;
        for (sv, &c) in self.support_vectors.iter().zip(&self.coefficients) {
            f += c * self.kernel.eval(sv, features);
        }
        Ok(f)
    }

    /// The decision value `f(x)`; positive means the positive class.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_decision_value`](Self::try_decision_value) for a typed
    /// error.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        match self.try_decision_value(features) {
            Ok(f) => f,
            // lint: allow(L008) — documented panicking wrapper; prediction paths validate via try_decision_value
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    /// Predicts the binary label (`true` = positive class), or reports
    /// a wrong-width vector.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&self, features: &[f64]) -> Result<bool, DimensionMismatch> {
        Ok(self.try_decision_value(features)? >= 0.0)
    }

    /// Predicts the binary label (`true` = positive class).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](Self::try_predict) for a typed error.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.decision_value(features) >= 0.0
    }

    /// Number of retained support vectors.
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.len()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Feature-vector width the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Retained support vectors (compiled-model packing).
    pub(crate) fn support_vectors(&self) -> &[Vec<f64>] {
        &self.support_vectors
    }

    /// `αᵢ·yᵢ` per support vector (compiled-model packing).
    pub(crate) fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// The bias term `b` (compiled-model packing).
    pub(crate) fn bias(&self) -> f64 {
        self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_separable(n: usize) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut v = 0.3f64;
        for _ in 0..n {
            v = (v * 991.7).fract();
            let a = v;
            v = (v * 617.3).fract();
            let b = v;
            xs.push(vec![a, b]);
            ys.push(a + b > 1.0);
        }
        (xs, ys)
    }

    #[test]
    fn kernel_values() {
        assert_eq!(Kernel::Linear.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = Kernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!((rbf.eval(&[0.0], &[1.0]) - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn linear_svm_separates() {
        let (xs, ys) = linear_separable(200);
        let params = SvmParams { c: 100.0, kernel: Kernel::Linear, ..Default::default() };
        let svm = BinarySvm::fit(&xs, &ys, &params);
        let correct = xs.iter().zip(&ys).filter(|(x, &y)| svm.predict(x) == y).count();
        assert!(correct as f64 / xs.len() as f64 > 0.95, "correct={correct}");
        assert!(svm.n_support_vectors() < xs.len());
    }

    #[test]
    fn rbf_svm_handles_nonlinear_boundary() {
        // circle: inside radius 0.35 of center → positive
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut v = 0.77f64;
        for _ in 0..300 {
            v = (v * 883.1).fract();
            let a = v;
            v = (v * 409.9).fract();
            let b = v;
            xs.push(vec![a, b]);
            ys.push(((a - 0.5).powi(2) + (b - 0.5).powi(2)).sqrt() < 0.35);
        }
        let params =
            SvmParams { c: 50.0, kernel: Kernel::Rbf { gamma: 10.0 }, ..Default::default() };
        let svm = BinarySvm::fit(&xs, &ys, &params);
        let acc = xs.iter().zip(&ys).filter(|(x, &y)| svm.predict(x) == y).count() as f64
            / xs.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");

        // A linear SVM cannot do this well.
        let lin = BinarySvm::fit(
            &xs,
            &ys,
            &SvmParams { c: 50.0, kernel: Kernel::Linear, ..Default::default() },
        );
        let lin_acc = xs.iter().zip(&ys).filter(|(x, &y)| lin.predict(x) == y).count() as f64
            / xs.len() as f64;
        assert!(acc > lin_acc, "rbf {acc} vs linear {lin_acc}");
    }

    #[test]
    fn decision_values_have_margin_sign() {
        let (xs, ys) = linear_separable(100);
        let params = SvmParams { c: 100.0, kernel: Kernel::Linear, ..Default::default() };
        let svm = BinarySvm::fit(&xs, &ys, &params);
        assert!(svm.decision_value(&[0.95, 0.95]) > 0.0);
        assert!(svm.decision_value(&[0.05, 0.05]) < 0.0);
    }

    #[test]
    fn fit_pair_extracts_two_classes() {
        let mut ds = Dataset::new(1, vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..30 {
            ds.push(vec![i as f64 / 30.0], 0);
            ds.push(vec![1.0 + i as f64 / 30.0], 1);
            ds.push(vec![2.0 + i as f64 / 30.0], 2);
        }
        let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        let svm = BinarySvm::fit_pair(&ds, 2, 0, &params);
        assert!(svm.predict(&[2.5])); // class 2 side
        assert!(!svm.predict(&[0.1])); // class 0 side
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn single_class_panics() {
        let xs = vec![vec![0.0], vec![1.0]];
        BinarySvm::fit(&xs, &[true, true], &SvmParams::default());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        BinarySvm::fit(&[vec![0.0]], &[true, false], &SvmParams::default());
    }

    #[test]
    fn paper_presets() {
        assert_eq!(SvmParams::paper_rbf().kernel, Kernel::Rbf { gamma: 50.0 });
        assert_eq!(SvmParams::paper_rbf().c, 1000.0);
        assert_eq!(SvmParams::paper_rbf_estimated().kernel, Kernel::Rbf { gamma: 10.0 });
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let (xs, ys) = linear_separable(120);
        let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        let a = BinarySvm::fit(&xs, &ys, &params);
        let b = BinarySvm::fit(&xs, &ys, &params);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_fit_is_bit_identical_to_serial() {
        let (xs, ys) = linear_separable(150);
        for kernel in [Kernel::Linear, Kernel::Rbf { gamma: 8.0 }] {
            let serial = SvmParams {
                c: 10.0,
                kernel,
                parallelism: Parallelism::serial(),
                ..Default::default()
            };
            let parallel = SvmParams { parallelism: Parallelism::fixed(4), ..serial };
            assert_eq!(
                BinarySvm::fit(&xs, &ys, &serial),
                BinarySvm::fit(&xs, &ys, &parallel),
                "kernel {kernel:?}"
            );
        }
    }

    #[test]
    fn wrong_width_is_a_typed_error_not_a_silent_truncation() {
        // Regression: Kernel::eval's length check is debug-only, so in
        // release a 1-wide probe against a 2-wide model used to
        // zip-truncate into a confident nonsense verdict.
        let (xs, ys) = linear_separable(80);
        let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        let svm = BinarySvm::fit(&xs, &ys, &params);
        assert_eq!(
            svm.try_decision_value(&[0.5]),
            Err(crate::DimensionMismatch { expected: 2, got: 1 })
        );
        assert_eq!(
            svm.try_predict(&[0.1, 0.2, 0.3]),
            Err(crate::DimensionMismatch { expected: 2, got: 3 })
        );
        assert!(svm.try_predict(&[0.9, 0.9]).is_ok());
    }

    #[test]
    #[should_panic(expected = "feature dimensionality mismatch")]
    fn wrong_width_panics_on_infallible_path() {
        let (xs, ys) = linear_separable(80);
        let params = SvmParams { c: 10.0, kernel: Kernel::Linear, ..Default::default() };
        BinarySvm::fit(&xs, &ys, &params).predict(&[0.5]);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn ragged_training_samples_panic() {
        let xs = vec![vec![0.0, 0.0], vec![1.0]];
        BinarySvm::fit(&xs, &[true, false], &SvmParams::default());
    }
}
