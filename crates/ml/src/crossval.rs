//! k-fold cross-validation (the paper's "10 times cross-validation").

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::parallel::{run_indexed, Parallelism};
use crate::Classifier;

/// The result of a cross-validation run: one confusion matrix per fold.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrossValReport {
    folds: Vec<ConfusionMatrix>,
}

impl CrossValReport {
    /// Per-fold confusion matrices, in fold order.
    pub fn folds(&self) -> &[ConfusionMatrix] {
        &self.folds
    }

    /// Per-fold overall accuracies (the series plotted in Fig. 2(b,c)).
    pub fn fold_accuracies(&self) -> Vec<f64> {
        self.folds.iter().map(|m| m.accuracy()).collect()
    }

    /// Per-fold accuracy for one class.
    pub fn fold_class_accuracies(&self, class: usize) -> Vec<f64> {
        self.folds.iter().map(|m| m.class_accuracy(class)).collect()
    }

    /// Confusion matrix summed over all folds.
    pub fn total(&self) -> ConfusionMatrix {
        let mut sum = ConfusionMatrix::new(self.folds[0].n_classes());
        for m in &self.folds {
            sum.merge(m);
        }
        sum
    }

    /// Mean of the per-fold accuracies.
    pub fn mean_accuracy(&self) -> f64 {
        let a = self.fold_accuracies();
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Runs stratified k-fold cross-validation: for each fold, trains with
/// `train` on the remaining k−1 folds and tests on the held-out fold.
///
/// `train` receives the training subset and returns any [`Classifier`].
///
/// # Panics
///
/// Panics if `k < 2` or `data` is empty.
///
/// # Examples
///
/// ```
/// use iustitia_ml::cart::{CartParams, DecisionTree};
/// use iustitia_ml::crossval::cross_validate;
/// use iustitia_ml::dataset::Dataset;
///
/// let mut ds = Dataset::new(1, vec!["lo".into(), "hi".into()]);
/// for i in 0..60 {
///     ds.push(vec![i as f64], usize::from(i >= 30));
/// }
/// let report = cross_validate(&ds, 5, 42, |train| {
///     DecisionTree::fit(train, &CartParams::default())
/// });
/// assert!(report.mean_accuracy() > 0.9);
/// ```
pub fn cross_validate<C, F>(data: &Dataset, k: usize, seed: u64, train: F) -> CrossValReport
where
    C: Classifier,
    F: Fn(&Dataset) -> C + Sync,
{
    cross_validate_with(data, k, seed, Parallelism::auto(), train)
}

/// [`cross_validate`] with an explicit worker-thread budget.
///
/// The folds are independent (fold membership comes from
/// `stratified_folds` before any training starts), so they run on
/// worker threads; each fold's model is trained *and* evaluated on its
/// worker, and per-fold confusion matrices come back in fold order.
/// The thread count never changes the report — see [`crate::parallel`].
///
/// # Panics
///
/// Panics if `k < 2` or `data` is empty.
pub fn cross_validate_with<C, F>(
    data: &Dataset,
    k: usize,
    seed: u64,
    parallelism: Parallelism,
    train: F,
) -> CrossValReport
where
    C: Classifier,
    F: Fn(&Dataset) -> C + Sync,
{
    let folds = data.stratified_folds(k, seed);
    let reports = run_indexed(parallelism.resolve(), k, |held_out| {
        let test_idx = &folds[held_out];
        let train_idx: Vec<usize> = folds
            .iter()
            .enumerate()
            .filter(|&(f, _)| f != held_out)
            .flat_map(|(_, idx)| idx.iter().copied())
            .collect();
        let model = train(&data.subset(&train_idx));
        let test = data.subset(test_idx);
        let mut cm = ConfusionMatrix::new(data.n_classes());
        for (x, y) in test.iter() {
            cm.record(y, model.predict(x));
        }
        cm
    });
    CrossValReport { folds: reports }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cart::{CartParams, DecisionTree};

    fn toy() -> Dataset {
        let mut ds = Dataset::new(1, vec!["a".into(), "b".into()]);
        for i in 0..100 {
            ds.push(vec![i as f64 + (i % 3) as f64 * 0.1], usize::from(i >= 50));
        }
        ds
    }

    #[test]
    fn runs_k_folds() {
        let ds = toy();
        let report = cross_validate(&ds, 10, 1, |t| DecisionTree::fit(t, &CartParams::default()));
        assert_eq!(report.folds().len(), 10);
        assert_eq!(report.fold_accuracies().len(), 10);
        assert!(report.mean_accuracy() > 0.9);
        assert_eq!(report.total().total(), 100);
    }

    #[test]
    fn class_accuracies_exposed() {
        let ds = toy();
        let report = cross_validate(&ds, 5, 2, |t| DecisionTree::fit(t, &CartParams::default()));
        let a0 = report.fold_class_accuracies(0);
        assert_eq!(a0.len(), 5);
        assert!(a0.iter().all(|&a| a > 0.8));
    }

    #[test]
    fn total_matrix_covers_every_sample_once() {
        let ds = toy();
        let report = cross_validate(&ds, 4, 7, |t| DecisionTree::fit(t, &CartParams::default()));
        assert_eq!(report.total().total(), ds.len() as u64);
    }

    #[test]
    fn parallel_folds_are_bit_identical_to_serial() {
        let ds = toy();
        let train = |t: &Dataset| DecisionTree::fit(t, &CartParams::default());
        let serial = cross_validate_with(&ds, 10, 1, Parallelism::serial(), train);
        let parallel = cross_validate_with(&ds, 10, 1, Parallelism::fixed(4), train);
        assert_eq!(serial, parallel);
    }
}
