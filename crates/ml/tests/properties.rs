//! Property-based tests for the ML substrate.

use iustitia_ml::cart::{CartParams, DecisionTree};
use iustitia_ml::compiled::{CompiledDag, CompiledTree};
use iustitia_ml::dataset::Dataset;
use iustitia_ml::metrics::ConfusionMatrix;
use iustitia_ml::multiclass::DagSvm;
use iustitia_ml::svm::{BinarySvm, Kernel, SvmParams};
use iustitia_ml::{cross_validate_with, Classifier, Parallelism};
use proptest::prelude::*;

/// Builds a dataset from arbitrary rows, assigning labels by a simple
/// threshold rule so it is learnable.
fn dataset_from_rows(rows: &[(f64, f64)]) -> Dataset {
    let mut ds = Dataset::new(2, vec!["a".into(), "b".into()]);
    for &(x, y) in rows {
        ds.push(vec![x, y], usize::from(x + y > 1.0));
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_prediction_is_always_a_valid_class(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..200),
        probe in (0.0f64..1.0, 0.0f64..1.0),
    ) {
        let ds = dataset_from_rows(&rows);
        // Ensure both classes exist; otherwise the tree is a single leaf,
        // which is also fine.
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let label = tree.predict(&[probe.0, probe.1]);
        prop_assert!(label < 2);
    }

    #[test]
    fn tree_training_accuracy_beats_majority_class(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 30..300),
    ) {
        let ds = dataset_from_rows(&rows);
        let counts = ds.class_counts();
        let majority = *counts.iter().max().expect("nonempty") as f64 / ds.len() as f64;
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        prop_assert!(tree.accuracy_on(&ds) + 1e-9 >= majority);
    }

    #[test]
    fn pruning_sequence_is_monotone(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 30..200),
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let seq = tree.pruning_sequence();
        for w in seq.windows(2) {
            prop_assert!(w[1].n_leaves() < w[0].n_leaves());
            prop_assert!(w[1].n_nodes() < w[0].n_nodes());
        }
        prop_assert_eq!(seq.last().expect("nonempty").n_leaves(), 1);
    }

    #[test]
    fn stratified_folds_partition_the_dataset(
        n_per_class in 4usize..40,
        k in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut ds = Dataset::new(1, vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..n_per_class {
            for c in 0..3 {
                ds.push(vec![i as f64 + c as f64 * 100.0], c);
            }
        }
        prop_assume!(k <= ds.len());
        let folds = ds.stratified_folds(k, seed);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..ds.len()).collect();
        prop_assert_eq!(all, expected);
        // Fold sizes are balanced within one sample per class.
        let sizes: Vec<usize> = folds.iter().map(|f| f.len()).collect();
        let min = sizes.iter().min().expect("nonempty");
        let max = sizes.iter().max().expect("nonempty");
        prop_assert!(max - min <= 3);
    }

    #[test]
    fn balanced_subsample_never_exceeds_request(
        n_per_class in 1usize..50,
        request in 1usize..80,
        seed in any::<u64>(),
    ) {
        let mut ds = Dataset::new(1, vec!["a".into(), "b".into()]);
        for i in 0..n_per_class {
            ds.push(vec![i as f64], 0);
            ds.push(vec![i as f64], 1);
        }
        let sub = ds.balanced_subsample(request, seed);
        for &c in &sub.class_counts() {
            prop_assert!(c <= request.min(n_per_class));
            prop_assert_eq!(c, request.min(n_per_class));
        }
    }

    #[test]
    fn confusion_matrix_accuracy_bounded(
        pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..200),
    ) {
        let mut cm = ConfusionMatrix::new(3);
        for &(a, p) in &pairs {
            cm.record(a, p);
        }
        prop_assert!((0.0..=1.0).contains(&cm.accuracy()));
        prop_assert_eq!(cm.total(), pairs.len() as u64);
        // Row rates sum to 1 for nonempty rows.
        for actual in 0..3 {
            let row: f64 = (0..3).map(|p| cm.misclassification_rate(actual, p)).sum();
            if pairs.iter().any(|&(a, _)| a == actual) {
                prop_assert!((row - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn svm_decision_is_sign_consistent(
        sep in 0.05f64..0.4,
        n in 10usize..60,
    ) {
        // Two linearly separated 1-D blobs; SVM must classify its own
        // training data correctly when separable with margin.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let off = (i as f64) / (n as f64) * 0.1;
            xs.push(vec![0.2 + off]);
            ys.push(false);
            xs.push(vec![0.8 + sep + off]);
            ys.push(true);
        }
        let params = SvmParams { c: 100.0, kernel: Kernel::Linear, ..Default::default() };
        let svm = BinarySvm::fit(&xs, &ys, &params);
        for (x, &y) in xs.iter().zip(&ys) {
            prop_assert_eq!(svm.predict(x), y);
        }
        // Decision values change monotonically along the axis.
        prop_assert!(svm.decision_value(&[0.0]) < svm.decision_value(&[2.0]));
    }

    #[test]
    fn rbf_kernel_bounded_and_symmetric(
        x in proptest::collection::vec(-10.0f64..10.0, 1..8),
        gamma in 0.01f64..100.0,
    ) {
        let y: Vec<f64> = x.iter().map(|v| v + 0.5).collect();
        let k = Kernel::Rbf { gamma };
        let kxy = k.eval(&x, &y);
        let kyx = k.eval(&y, &x);
        prop_assert!((kxy - kyx).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&kxy));
        prop_assert!((k.eval(&x, &x) - 1.0).abs() < 1e-12);
    }
}

/// Builds a learnable 3-class dataset from arbitrary rows, with anchor
/// rows so every class is present (DAGSVM needs samples of each pair).
fn three_class_dataset(rows: &[(f64, f64)]) -> Dataset {
    let mut ds = Dataset::new(2, vec!["a".into(), "b".into(), "c".into()]);
    ds.push(vec![0.1, 0.1], 0);
    ds.push(vec![0.5, 0.5], 1);
    ds.push(vec![0.9, 0.9], 2);
    for &(x, y) in rows {
        let label = if x + y < 0.7 {
            0
        } else if x + y < 1.3 {
            1
        } else {
            2
        };
        ds.push(vec![x, y], label);
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_tree_matches_boxed_on_random_vectors(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 20..150),
        probes in proptest::collection::vec((-0.5f64..1.5, -0.5f64..1.5), 1..40),
    ) {
        let ds = dataset_from_rows(&rows);
        let tree = DecisionTree::fit(&ds, &CartParams::default());
        let fast = CompiledTree::compile(&tree);
        for (x, y) in probes {
            prop_assert_eq!(fast.predict(&[x, y]), tree.predict(&[x, y]));
        }
    }

    #[test]
    fn compiled_dag_matches_boxed_on_random_vectors(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 12..50),
        probes in proptest::collection::vec((-0.5f64..1.5, -0.5f64..1.5), 1..25),
    ) {
        let ds = three_class_dataset(&rows);
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let dag = DagSvm::fit(&ds, &params);
        let mut fast = CompiledDag::compile(&dag);
        for (x, y) in probes {
            prop_assert_eq!(fast.predict(&[x, y]), dag.predict(&[x, y]));
        }
    }

    #[test]
    fn parallel_svm_fit_matches_serial_on_random_data(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..40),
    ) {
        let xs: Vec<Vec<f64>> = rows.iter().map(|&(x, y)| vec![x, y]).collect();
        let ys: Vec<bool> = rows.iter().map(|&(x, y)| x + y > 1.0).collect();
        let serial = SvmParams {
            c: 10.0,
            kernel: Kernel::Rbf { gamma: 5.0 },
            parallelism: Parallelism::serial(),
            ..Default::default()
        };
        let parallel = SvmParams { parallelism: Parallelism::fixed(3), ..serial };
        prop_assert_eq!(BinarySvm::fit(&xs, &ys, &serial), BinarySvm::fit(&xs, &ys, &parallel));
    }

    #[test]
    fn parallel_crossval_matches_serial_on_random_data(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 30..120),
        seed in any::<u64>(),
    ) {
        let ds = dataset_from_rows(&rows);
        let train = |fold: &Dataset| DecisionTree::fit(fold, &CartParams::default());
        let serial = cross_validate_with(&ds, 5, seed, Parallelism::serial(), train);
        let parallel = cross_validate_with(&ds, 5, seed, Parallelism::fixed(4), train);
        prop_assert_eq!(serial, parallel);
    }
}

proptest! {
    // Few cases: the parallel split search only engages at >=512
    // samples, so each case trains on a deliberately large dataset.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_cart_fit_matches_serial_on_random_data(
        rows in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 520..640),
    ) {
        let ds = dataset_from_rows(&rows);
        let serial =
            CartParams { parallelism: Parallelism::serial(), ..CartParams::default() };
        let parallel = CartParams { parallelism: Parallelism::fixed(4), ..serial };
        prop_assert_eq!(
            DecisionTree::fit(&ds, &serial),
            DecisionTree::fit(&ds, &parallel)
        );
    }
}
