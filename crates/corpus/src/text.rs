//! Natural-language text synthesis.
//!
//! Text flows in the paper are "HTML pages, email, chat, telnet" plus
//! documents, manuals, and log files. English text carries roughly
//! 4.0–4.7 bits per byte (`h1 ≈ 0.5–0.6`) with strongly structured
//! bigrams/trigrams, which is exactly what separates it from binary and
//! encrypted content in the entropy-vector space. The generator samples
//! words Zipf-style from an embedded vocabulary and wraps the prose in
//! one of several document skeletons (plain, HTML, log, email, manual).

use rand::rngs::StdRng;
use rand::Rng;

/// Embedded vocabulary for Zipf-sampled prose. Ordered by (approximate)
/// descending real-world frequency so rank-based sampling is natural.
const VOCABULARY: &[&str] = &[
    "the", "of", "and", "a", "to", "in", "is", "you", "that", "it", "he", "was", "for", "on",
    "are", "as", "with", "his", "they", "i", "at", "be", "this", "have", "from", "or", "one",
    "had", "by", "word", "but", "not", "what", "all", "were", "we", "when", "your", "can", "said",
    "there", "use", "an", "each", "which", "she", "do", "how", "their", "if", "will", "up",
    "other", "about", "out", "many", "then", "them", "these", "so", "some", "her", "would", "make",
    "like", "him", "into", "time", "has", "look", "two", "more", "write", "go", "see", "number",
    "no", "way", "could", "people", "my", "than", "first", "water", "been", "call", "who", "oil",
    "its", "now", "find", "long", "down", "day", "did", "get", "come", "made", "may", "part",
    "over", "new", "sound", "take", "only", "little", "work", "know", "place", "year", "live",
    "me", "back", "give", "most", "very", "after", "thing", "our", "just", "name", "good",
    "sentence", "man", "think", "say", "great", "where", "help", "through", "much", "before",
    "line", "right", "too", "mean", "old", "any", "same", "tell", "boy", "follow", "came", "want",
    "show", "also", "around", "form", "three", "small", "set", "put", "end", "does", "another",
    "well", "large", "must", "big", "even", "such", "because", "turn", "here",
];

/// Zipf-ish rank sampler: p(rank) ∝ 1/(rank+1).
fn sample_word(rng: &mut StdRng) -> &'static str {
    // Inverse-CDF over harmonic weights, approximated by u^e skew.
    let u: f64 = rng.gen::<f64>();
    let idx = ((u * u * u) * VOCABULARY.len() as f64) as usize;
    VOCABULARY[idx.min(VOCABULARY.len() - 1)]
}

/// Appends Zipf-sampled prose (words, punctuation, paragraph breaks)
/// until `out` reaches `target` bytes.
fn fill_prose(out: &mut Vec<u8>, target: usize, rng: &mut StdRng) {
    let mut words_in_sentence = 0usize;
    let mut sentence_cap = false;
    while out.len() < target {
        let w = sample_word(rng);
        if sentence_cap {
            out.extend(w.bytes().enumerate().map(
                |(i, b)| {
                    if i == 0 {
                        b.to_ascii_uppercase()
                    } else {
                        b
                    }
                },
            ));
            sentence_cap = false;
        } else {
            out.extend_from_slice(w.as_bytes());
        }
        words_in_sentence += 1;
        if words_in_sentence >= 6 && rng.gen_bool(0.18) {
            out.push(b'.');
            words_in_sentence = 0;
            sentence_cap = true;
            if rng.gen_bool(0.12) {
                out.extend_from_slice(b"\n\n");
            } else {
                out.push(b' ');
            }
        } else if rng.gen_bool(0.04) {
            out.extend_from_slice(b", ");
        } else {
            out.push(b' ');
        }
    }
    out.truncate(target);
}

/// Plain prose document.
fn plain(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    fill_prose(&mut out, size, rng);
    out
}

/// HTML page: tags + prose.
fn html(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 256);
    out.extend_from_slice(b"<!DOCTYPE html>\n<html>\n<head><title>");
    let title_target = out.len() + 24;
    fill_prose(&mut out, title_target, rng);
    out.extend_from_slice(b"</title></head>\n<body>\n");
    while out.len() < size.saturating_sub(16) {
        let tag: &[u8] = match rng.gen_range(0..4) {
            0 => b"<p>",
            1 => b"<div class=\"content\">",
            2 => b"<li>",
            _ => b"<h2>",
        };
        out.extend_from_slice(tag);
        let para = rng.gen_range(40..240).min(size.saturating_sub(out.len()));
        let para_target = out.len() + para;
        fill_prose(&mut out, para_target, rng);
        out.extend_from_slice(b"</p>\n");
    }
    out.extend_from_slice(b"</body></html>\n");
    out.truncate(size);
    out
}

/// Server-style log file: timestamped lines with levels and counters.
fn log_file(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    let levels = ["INFO", "WARN", "DEBUG", "ERROR"];
    let mut t = 1_146_400_000u64 + rng.gen_range(0..10_000_000);
    while out.len() < size {
        t += rng.gen_range(1..120);
        let lvl = levels[rng.gen_range(0..levels.len())];
        let pid = rng.gen_range(100..32000);
        out.extend_from_slice(
            format!(
                "[{t}] {lvl} proc[{pid}]: request from 10.{}.{}.{} served in {} ms - ",
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(0..256),
                rng.gen_range(1..900)
            )
            .as_bytes(),
        );
        let tail = rng.gen_range(10..60).min(size.saturating_sub(out.len()));
        let tail_target = out.len() + tail;
        fill_prose(&mut out, tail_target, rng);
        out.push(b'\n');
    }
    out.truncate(size);
    out
}

/// RFC-822-style email with header block and body.
fn email(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    out.extend_from_slice(
        format!(
            "From: user{}@example.org\r\nTo: user{}@example.net\r\nSubject: ",
            rng.gen_range(1..999),
            rng.gen_range(1..999)
        )
        .as_bytes(),
    );
    let subject_target = out.len() + 32;
    fill_prose(&mut out, subject_target, rng);
    out.extend_from_slice(b"\r\nMIME-Version: 1.0\r\nContent-Type: text/plain\r\n\r\n");
    fill_prose(&mut out, size, rng);
    out.truncate(size);
    out
}

/// Unix-manual-style document with section headers and indentation.
fn manual(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 128);
    let sections = ["NAME", "SYNOPSIS", "DESCRIPTION", "OPTIONS", "EXAMPLES", "SEE ALSO"];
    let mut s = 0usize;
    while out.len() < size {
        out.extend_from_slice(sections[s % sections.len()].as_bytes());
        out.push(b'\n');
        s += 1;
        let body = rng.gen_range(120..600).min(size.saturating_sub(out.len()));
        out.extend_from_slice(b"    ");
        let body_target = out.len() + body;
        fill_prose(&mut out, body_target, rng);
        out.extend_from_slice(b"\n\n");
    }
    out.truncate(size);
    out
}

/// Generates one text file of the requested size, choosing a document
/// kind at random.
pub fn generate(size: usize, rng: &mut StdRng) -> Vec<u8> {
    match rng.gen_range(0..5) {
        0 => plain(size, rng),
        1 => html(size, rng),
        2 => log_file(size, rng),
        3 => email(size, rng),
        _ => manual(size, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_entropy::entropy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generates_exact_size() {
        let mut r = rng(1);
        for size in [1usize, 10, 100, 1000, 10_000] {
            for _ in 0..5 {
                assert_eq!(generate(size, &mut r).len(), size);
            }
        }
    }

    #[test]
    fn output_is_mostly_printable_ascii() {
        let mut r = rng(2);
        let data = generate(8192, &mut r);
        let printable =
            data.iter().filter(|&&b| (0x20..0x7F).contains(&b) || b == b'\n' || b == b'\r').count();
        assert!(printable as f64 / data.len() as f64 > 0.99);
    }

    #[test]
    fn entropy_in_text_band() {
        let mut r = rng(3);
        for _ in 0..10 {
            let data = generate(8192, &mut r);
            let h1 = entropy(&data, 1);
            assert!(h1 > 0.3 && h1 < 0.72, "h1={h1}");
        }
    }

    #[test]
    fn all_kinds_generate() {
        let mut r = rng(4);
        assert!(!plain(512, &mut r).is_empty());
        let h = html(2048, &mut r);
        assert!(h.starts_with(b"<!DOCTYPE html>"));
        let l = log_file(2048, &mut r);
        assert!(l.iter().filter(|&&b| b == b'\n').count() > 3);
        let e = email(2048, &mut r);
        assert!(e.starts_with(b"From: "));
        let m = manual(2048, &mut r);
        assert!(m.starts_with(b"NAME\n"));
    }

    #[test]
    fn zipf_sampling_prefers_head_of_vocabulary() {
        let mut r = rng(5);
        let mut head = 0usize;
        for _ in 0..10_000 {
            let w = sample_word(&mut r);
            if VOCABULARY[..20].contains(&w) {
                head += 1;
            }
        }
        // ~u³ skew sends about half the mass to the top-20 words
        // (P(u³ < 20/160) = P(u < 0.5) = 0.5), far above uniform (12.5%).
        assert!(head > 4000, "head={head}");
    }
}
