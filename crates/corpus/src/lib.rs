//! Synthetic labeled file corpus for the Iustitia flow-nature classifier.
//!
//! The paper validates its hypotheses on a pool of real files: 24,985
//! text files (documents, manuals, logs, HTML), 52,273 binary files
//! (executables, JPG/GIF/AVI/MPG/PDF/ZIP), and 13,656 encrypted files
//! (PGP/AES/DES output). That corpus is not redistributable, so this
//! crate synthesizes files whose *class-conditional entropy profiles*
//! match the real ones — which is exactly the signal the classifier
//! consumes:
//!
//! * [`text`] — Markov/Zipf natural-language prose, HTML, log files,
//!   emails, and manuals (`h1 ≈ 0.5–0.6`, low `h2`, `h3`).
//! * [`binary`] — executables (skewed opcode distributions, zero-run
//!   padding, embedded string tables), JPEG/GIF-like images and ZIP-like
//!   archives (low-entropy headers followed by high-entropy compressed
//!   bodies), PDF-like hybrids, and AV-stream containers. Entropy sits
//!   between text and ciphertext *on average* and overlaps encrypted for
//!   the compressed formats — reproducing the binary↔encrypted confusion
//!   in Table 1.
//! * [`encrypted`] — RC4 (implemented here) and ChaCha-based keystream
//!   ciphertext (`h1 ≈ 1.0` at every width).
//! * [`compressed`] — DEFLATE-shaped streams (gzip/zlib/raw framing,
//!   stored + Huffman-coded block structure, LZ-style match repetition,
//!   trailing checksums). Entropy sits near ciphertext (`h1 ≳ 0.95`),
//!   which is exactly the compressed↔encrypted confusion HEDGE/EnCoD
//!   target — the randomness-test battery, not the entropy vector, is
//!   what separates this class.
//! * [`headers`] — application-layer headers (HTTP/SMTP/POP3/IMAP)
//!   and the signature-based detection/stripping of §4.3.
//!
//! # Example
//!
//! ```
//! use iustitia_corpus::{CorpusBuilder, FileClass};
//! use iustitia_entropy::entropy;
//!
//! let corpus = CorpusBuilder::new(7).files_per_class(5).size_range(2048, 4096).build();
//! assert_eq!(corpus.len(), 20);
//! let mean_h1 = |class: FileClass| {
//!     let files: Vec<_> = corpus.iter().filter(|f| f.class == class).collect();
//!     files.iter().map(|f| entropy(&f.data, 1)).sum::<f64>() / files.len() as f64
//! };
//! // Hypothesis 1: text < binary < encrypted.
//! assert!(mean_h1(FileClass::Text) < mean_h1(FileClass::Binary));
//! assert!(mean_h1(FileClass::Binary) < mean_h1(FileClass::Encrypted));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binary;
pub mod compressed;
pub mod encrypted;
pub mod headers;
pub mod text;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use encrypted::Rc4;
pub use headers::{
    scan_application_header, strip_application_header, AppProtocol, HeaderGenerator, HeaderScan,
};

/// The flow/file natures Iustitia distinguishes.
///
/// The numeric value is the class index used by datasets and confusion
/// matrices throughout the workspace (`Text = 0`, `Binary = 1`,
/// `Encrypted = 2`, `Compressed = 3`). The first three match the
/// paper's 3-class scheme; `Compressed` is the HEDGE/EnCoD-motivated
/// fourth class, appended last so the historical indices stay stable on
/// the wire and in saved models.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum FileClass {
    /// Natural-language content: documents, HTML, logs, chat, email.
    Text,
    /// Machine content: executables, images, audio/video, archives.
    Binary,
    /// Ciphertext: SSL records, encrypted files.
    Encrypted,
    /// Compressed streams: DEFLATE-family output (gzip/zlib/raw).
    Compressed,
}

impl FileClass {
    /// All classes in index order.
    pub const ALL: [FileClass; 4] =
        [FileClass::Text, FileClass::Binary, FileClass::Encrypted, FileClass::Compressed];

    /// The class index (`Text = 0`, `Binary = 1`, `Encrypted = 2`,
    /// `Compressed = 3`).
    pub fn index(self) -> usize {
        match self {
            FileClass::Text => 0,
            FileClass::Binary => 1,
            FileClass::Encrypted => 2,
            FileClass::Compressed => 3,
        }
    }

    /// The class for an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= FileClass::ALL.len()`.
    pub fn from_index(index: usize) -> FileClass {
        // lint: allow(L008) — documented panic contract; classifier labels are < ALL.len() by training invariant
        Self::ALL[index]
    }

    /// Class name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FileClass::Text => "text",
            FileClass::Binary => "binary",
            FileClass::Encrypted => "encrypted",
            FileClass::Compressed => "compressed",
        }
    }

    /// Class names in index order.
    pub fn names() -> Vec<String> {
        Self::ALL.iter().map(|c| c.name().to_string()).collect()
    }
}

impl std::fmt::Display for FileClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One synthesized file with its ground-truth class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabeledFile {
    /// Ground-truth nature.
    pub class: FileClass,
    /// File contents.
    pub data: Vec<u8>,
}

/// Generates one file of the given class and approximate size.
///
/// The concrete sub-kind (prose vs HTML vs log; executable vs image vs
/// archive; RC4 vs ChaCha) is drawn at random, mirroring the mixed
/// composition of the paper's pool.
pub fn generate_file(class: FileClass, size: usize, rng: &mut StdRng) -> Vec<u8> {
    match class {
        FileClass::Text => text::generate(size, rng),
        FileClass::Binary => binary::generate(size, rng),
        FileClass::Encrypted => encrypted::generate(size, rng),
        FileClass::Compressed => compressed::generate(size, rng),
    }
}

/// Builder for a balanced synthetic corpus.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    seed: u64,
    files_per_class: usize,
    min_size: usize,
    max_size: usize,
}

impl CorpusBuilder {
    /// Creates a builder with the given RNG seed
    /// (default: 100 files per class of 1–64 KiB).
    pub fn new(seed: u64) -> Self {
        CorpusBuilder { seed, files_per_class: 100, min_size: 1024, max_size: 65536 }
    }

    /// Sets the number of files generated for each class.
    pub fn files_per_class(mut self, n: usize) -> Self {
        self.files_per_class = n;
        self
    }

    /// Sets the (inclusive) file size range in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn size_range(mut self, min: usize, max: usize) -> Self {
        assert!(min > 0 && min <= max, "invalid size range {min}..={max}");
        self.min_size = min;
        self.max_size = max;
        self
    }

    /// Generates the corpus: `FileClass::ALL.len() × files_per_class`
    /// labeled files.
    ///
    /// Sizes are drawn log-uniformly from the configured range, matching
    /// the heavy-tailed size mix of real file pools.
    pub fn build(&self) -> Vec<LabeledFile> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(FileClass::ALL.len() * self.files_per_class);
        for class in FileClass::ALL {
            for _ in 0..self.files_per_class {
                let size = if self.min_size == self.max_size {
                    self.min_size
                } else {
                    let lo = (self.min_size as f64).ln();
                    let hi = (self.max_size as f64).ln();
                    rng.gen_range(lo..hi).exp().round() as usize
                };
                out.push(LabeledFile { class, data: generate_file(class, size.max(1), &mut rng) });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_entropy::entropy;

    #[test]
    fn class_index_round_trip_is_exhaustive() {
        // Exhaustive both ways: every variant round-trips through its
        // index, every valid index round-trips through its variant, and
        // names() stays aligned with index order. Adding a class must
        // not silently desynchronize dataset labels from verdict names.
        assert_eq!(FileClass::ALL.len(), 4);
        for (i, class) in FileClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "ALL order must match index()");
            assert_eq!(FileClass::from_index(class.index()), *class);
            assert_eq!(FileClass::from_index(i).index(), i);
            assert_eq!(FileClass::names()[i], class.name());
            assert_eq!(class.to_string(), class.name());
        }
        assert_eq!(FileClass::names(), vec!["text", "binary", "encrypted", "compressed"]);
        assert_eq!(FileClass::names().len(), FileClass::ALL.len());
        // Historical 3-class indices are frozen (wire/model compat).
        assert_eq!(FileClass::Text.index(), 0);
        assert_eq!(FileClass::Binary.index(), 1);
        assert_eq!(FileClass::Encrypted.index(), 2);
        assert_eq!(FileClass::Compressed.index(), 3);
    }

    #[test]
    #[should_panic]
    fn from_index_rejects_out_of_range() {
        FileClass::from_index(FileClass::ALL.len());
    }

    #[test]
    fn builder_produces_balanced_corpus() {
        let corpus = CorpusBuilder::new(1).files_per_class(8).size_range(512, 2048).build();
        assert_eq!(corpus.len(), 32);
        for class in FileClass::ALL {
            let n = corpus.iter().filter(|f| f.class == class).count();
            assert_eq!(n, 8);
        }
        for f in &corpus {
            assert!(f.data.len() >= 256, "file unexpectedly tiny: {}", f.data.len());
        }
    }

    #[test]
    fn corpus_is_deterministic_per_seed() {
        let a = CorpusBuilder::new(99).files_per_class(3).size_range(512, 1024).build();
        let b = CorpusBuilder::new(99).files_per_class(3).size_range(512, 1024).build();
        assert_eq!(a, b);
        let c = CorpusBuilder::new(98).files_per_class(3).size_range(512, 1024).build();
        assert_ne!(a, c);
    }

    #[test]
    fn entropy_ordering_hypothesis_holds_in_the_mean() {
        let corpus = CorpusBuilder::new(42).files_per_class(30).size_range(4096, 16384).build();
        let mean_h1 = |class: FileClass| {
            let files: Vec<_> = corpus.iter().filter(|f| f.class == class).collect();
            files.iter().map(|f| entropy(&f.data, 1)).sum::<f64>() / files.len() as f64
        };
        let (t, b, e) =
            (mean_h1(FileClass::Text), mean_h1(FileClass::Binary), mean_h1(FileClass::Encrypted));
        assert!(t < b && b < e, "t={t:.3} b={b:.3} e={e:.3}");
        assert!(t > 0.3 && t < 0.75, "text h1 out of plausible band: {t}");
        assert!(e > 0.9, "ciphertext h1 should be near 1: {e}");
        // Compressed must land in the near-ciphertext band — high
        // enough that the entropy vector alone confuses it with
        // encrypted (the motivation for the randomness battery).
        let c = mean_h1(FileClass::Compressed);
        assert!(c > 0.85, "compressed h1 should be near ciphertext: {c}");
    }

    #[test]
    fn binary_overlaps_encrypted_sometimes() {
        // The compressed binary sub-kinds must reach near-ciphertext
        // entropy — that's what produces the paper's binary→encrypted
        // misclassification band (~12%).
        let corpus = CorpusBuilder::new(7).files_per_class(40).size_range(8192, 16384).build();
        let high_entropy_binaries = corpus
            .iter()
            .filter(|f| f.class == FileClass::Binary)
            .filter(|f| entropy(&f.data, 1) > 0.9)
            .count();
        assert!(high_entropy_binaries >= 3, "got {high_entropy_binaries}");
    }

    #[test]
    #[should_panic(expected = "invalid size range")]
    fn bad_size_range_panics() {
        CorpusBuilder::new(0).size_range(10, 5);
    }
}
