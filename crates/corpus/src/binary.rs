//! Binary file synthesis: executables, images, archives, documents,
//! and multimedia streams.
//!
//! Binary content in the paper spans "executable code, multimedia files,
//! etc." — a heterogeneous class whose entropy sits *between* text and
//! ciphertext on average, but with heavy overlap on both sides:
//! machine code and structured containers sit near `h1 ≈ 0.6–0.85`,
//! while the entropy-coded bodies of JPEG/ZIP/MPEG approach `h1 ≈ 1`
//! (the cause of the paper's binary→encrypted confusion). Each
//! generator here mimics the *byte-distribution* structure of its
//! format, not its exact syntax.

use rand::rngs::StdRng;
use rand::Rng;

/// Weighted sampling table for machine-code-like bytes: a few dozen
/// "opcodes" carry most of the mass, with ModRM/displacement bytes and
/// zero padding mixed in. Produces the skewed mid-entropy distribution
/// characteristic of executable sections (~5.5–6.5 bits/byte).
fn code_byte(rng: &mut StdRng) -> u8 {
    const COMMON: [u8; 24] = [
        0x8B, 0x89, 0xE8, 0xFF, 0x48, 0x4C, 0x0F, 0x83, 0xC3, 0x55, 0x5D, 0x74, 0x75, 0xEB, 0x85,
        0x31, 0x50, 0x58, 0x01, 0x03, 0x41, 0x44, 0x66, 0x90,
    ];
    let r = rng.gen_range(0..100);
    if r < 55 {
        COMMON[rng.gen_range(0..COMMON.len())]
    } else if r < 70 {
        0x00
    } else {
        rng.gen()
    }
}

/// ELF-like executable: magic + program header table + code sections +
/// ASCII string/symbol tables + zero padding.
fn executable(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(&[0x7F, b'E', b'L', b'F', 2, 1, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
    // program header entries: small integers in little-endian words
    for _ in 0..8 {
        out.extend_from_slice(&(rng.gen_range(0u32..7)).to_le_bytes());
        out.extend_from_slice(&(rng.gen_range(0u32..0x40_0000) & !0xFFF).to_le_bytes());
    }
    while out.len() < size {
        match rng.gen_range(0..10) {
            // code section
            0..=5 => {
                let n = rng.gen_range(64..512).min(size - out.len());
                for _ in 0..n {
                    out.push(code_byte(rng));
                }
            }
            // string table: NUL-separated identifiers
            6..=7 => {
                let n = rng.gen_range(32..256);
                for _ in 0..n {
                    if out.len() >= size {
                        break;
                    }
                    let len = rng.gen_range(3..14);
                    for _ in 0..len {
                        if out.len() >= size {
                            break;
                        }
                        out.push(b'a' + rng.gen_range(0..26));
                    }
                    out.push(0);
                }
            }
            // zero padding run
            _ => {
                let n = rng.gen_range(16..256).min(size - out.len());
                out.extend(std::iter::repeat_n(0u8, n));
            }
        }
    }
    out.truncate(size);
    out
}

/// Bytes resembling an entropy-coded (compressed) stream: nearly — but
/// not perfectly — uniform. Real DEFLATE/JPEG output carries ≈ 7.9–7.97
/// bits/byte (symbol-length quantization and marker bytes skew the
/// distribution slightly), which is precisely the gap that lets the
/// paper's SVM pull ciphertext (a true 8.0 bits/byte) away from
/// compressed binaries. We model it as a mixture: mostly uniform bytes,
/// a low-value-skewed residue, and JPEG-style `0xFF 0x00` stuffing.
fn compressed_body(out: &mut Vec<u8>, n: usize, rng: &mut StdRng) {
    let end = out.len() + n;
    while out.len() < end {
        let b: u8 = if rng.gen_bool(0.08) {
            rng.gen_range(0..96) // short-code residue
        } else {
            rng.gen()
        };
        out.push(b);
        if b == 0xFF {
            out.push(0x00); // byte stuffing, as in JPEG entropy segments
        }
    }
    out.truncate(end);
}

/// JPEG-like image: SOI + quantization/huffman tables (structured) +
/// entropy-coded body + EOI.
fn jpeg(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0, 0x00, 0x10]);
    out.extend_from_slice(b"JFIF\0");
    // quantization table: small, smoothly increasing values
    out.extend_from_slice(&[0xFF, 0xDB, 0x00, 0x43, 0x00]);
    for i in 0..64u8 {
        out.push(2 + i / 2 + rng.gen_range(0..4));
    }
    // huffman table stub
    out.extend_from_slice(&[0xFF, 0xC4, 0x00, 0x1F, 0x00]);
    for i in 0..16u8 {
        out.push(i % 8);
    }
    out.extend_from_slice(&[0xFF, 0xDA, 0x00, 0x0C]); // start of scan
    if size > out.len() + 2 {
        let n = size - out.len() - 2;
        compressed_body(&mut out, n, rng);
    }
    out.extend_from_slice(&[0xFF, 0xD9]);
    out.truncate(size);
    out
}

/// GIF-like image: header + palette (structured) + LZW-coded body.
fn gif(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"GIF89a");
    out.extend_from_slice(&(rng.gen_range(16u16..1024)).to_le_bytes());
    out.extend_from_slice(&(rng.gen_range(16u16..1024)).to_le_bytes());
    out.extend_from_slice(&[0xF7, 0x00, 0x00]);
    // 256-entry palette: correlated RGB triples (low entropy)
    let base: u8 = rng.gen();
    for i in 0..=255u8 {
        out.push(base.wrapping_add(i));
        out.push(base.wrapping_add(i / 2));
        out.push(i);
    }
    out.extend_from_slice(&[0x2C, 0, 0, 0, 0]);
    if size > out.len() {
        let n = size - out.len();
        compressed_body(&mut out, n, rng);
    }
    out.truncate(size);
    out
}

/// ZIP-like archive: local file headers with ASCII names + DEFLATE-like
/// bodies + central directory.
fn zip(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    while out.len() + 64 < size {
        out.extend_from_slice(&[0x50, 0x4B, 0x03, 0x04, 20, 0, 0, 0, 8, 0]);
        out.extend_from_slice(&rng.gen::<u32>().to_le_bytes()); // crc
        let name_len = rng.gen_range(8..24usize);
        out.extend_from_slice(&(name_len as u16).to_le_bytes());
        for _ in 0..name_len {
            out.push(b'a' + rng.gen_range(0..26));
        }
        let body = rng.gen_range(256..2048).min(size.saturating_sub(out.len()));
        compressed_body(&mut out, body, rng);
    }
    // central directory trailer
    while out.len() < size {
        out.push(0x50);
        if out.len() < size {
            out.push(0x4B);
        }
    }
    out.truncate(size);
    out
}

/// PDF-like document: text skeleton with interleaved compressed streams.
fn pdf(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"%PDF-1.4\n");
    let mut obj = 1;
    while out.len() + 32 < size {
        out.extend_from_slice(
            format!(
                "{obj} 0 obj\n<< /Length {} /Filter /FlateDecode >>\nstream\n",
                rng.gen_range(128..1024)
            )
            .as_bytes(),
        );
        obj += 1;
        let body = rng.gen_range(128..1024).min(size.saturating_sub(out.len()));
        compressed_body(&mut out, body, rng);
        out.extend_from_slice(b"\nendstream\nendobj\n");
    }
    while out.len() < size {
        out.extend_from_slice(b"%%EOF\n");
    }
    out.truncate(size);
    out
}

/// MPEG/AVI-like stream: periodic frame headers + mid-entropy payload
/// (motion-compensated residuals are not fully uniform).
fn multimedia(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(size as u32).to_le_bytes());
    out.extend_from_slice(b"AVI LIST");
    while out.len() < size {
        out.extend_from_slice(&[0x00, 0x00, 0x01, rng.gen_range(0xB0..0xC0)]); // start code
        let frame = rng.gen_range(256..1500).min(size - out.len());
        for _ in 0..frame {
            // Residual-coded video: a large share of small values, the
            // rest near-uniform — clearly below ciphertext entropy.
            if rng.gen_bool(0.45) {
                out.push(rng.gen_range(0..32));
            } else {
                out.push(rng.gen());
            }
        }
    }
    out.truncate(size);
    out
}

/// Generates one binary file of the requested size, choosing a format at
/// random with weights loosely matching the paper's pool (executables
/// and images dominate).
pub fn generate(size: usize, rng: &mut StdRng) -> Vec<u8> {
    match rng.gen_range(0..10) {
        0..=3 => executable(size, rng),
        4..=5 => jpeg(size, rng),
        6 => gif(size, rng),
        7 => zip(size, rng),
        8 => pdf(size, rng),
        _ => multimedia(size, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_entropy::entropy;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn generates_exact_size() {
        let mut r = rng(1);
        for size in [1usize, 16, 100, 1000, 20_000] {
            for _ in 0..6 {
                assert_eq!(generate(size, &mut r).len(), size);
            }
        }
    }

    #[test]
    fn executables_are_mid_entropy() {
        let mut r = rng(2);
        for _ in 0..5 {
            let data = executable(8192, &mut r);
            let h1 = entropy(&data, 1);
            assert!(h1 > 0.3 && h1 < 0.9, "h1={h1}");
        }
    }

    #[test]
    fn compressed_formats_are_high_entropy() {
        let mut r = rng(3);
        let j = jpeg(16384, &mut r);
        let z = zip(16384, &mut r);
        assert!(entropy(&j, 1) > 0.9, "jpeg h1={}", entropy(&j, 1));
        assert!(entropy(&z, 1) > 0.85, "zip h1={}", entropy(&z, 1));
    }

    #[test]
    fn magic_bytes_present() {
        let mut r = rng(4);
        assert!(executable(256, &mut r).starts_with(&[0x7F, b'E', b'L', b'F']));
        assert!(jpeg(256, &mut r).starts_with(&[0xFF, 0xD8]));
        assert!(gif(1024, &mut r).starts_with(b"GIF89a"));
        assert!(zip(256, &mut r).starts_with(&[0x50, 0x4B]));
        assert!(pdf(256, &mut r).starts_with(b"%PDF"));
        assert!(multimedia(256, &mut r).starts_with(b"RIFF"));
    }

    #[test]
    fn jpeg_stuffing_lowers_entropy_slightly_below_uniform() {
        let mut r = rng(5);
        let mut body = Vec::new();
        compressed_body(&mut body, 65536, &mut r);
        let h1 = entropy(&body, 1);
        assert!(h1 > 0.95 && h1 < 0.9999, "h1={h1}");
        // 0x00 is over-represented due to stuffing.
        let zeros = body.iter().filter(|&&b| b == 0).count();
        let expected_uniform = body.len() / 256;
        assert!(zeros > expected_uniform, "zeros={zeros} uniform={expected_uniform}");
    }

    #[test]
    fn binary_class_is_heterogeneous() {
        // Across many draws the class must span a wide h1 band.
        let mut r = rng(6);
        let h1s: Vec<f64> = (0..40).map(|_| entropy(&generate(8192, &mut r), 1)).collect();
        let min = h1s.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = h1s.iter().cloned().fold(0.0f64, f64::max);
        assert!(min < 0.8, "min={min}");
        assert!(max > 0.9, "max={max}");
    }
}
