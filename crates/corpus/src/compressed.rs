//! DEFLATE-shaped compressed-stream synthesis.
//!
//! The fourth class exists to reproduce the HEDGE/EnCoD observation:
//! compressed streams sit in the same *entropy* band as ciphertext
//! (`h1 ≳ 0.95`), yet fail randomness tests that true keystream output
//! passes. This generator is **shape mimicry, not a real compressor** —
//! it emits the framing and statistical texture of DEFLATE-family
//! output without implementing Huffman coding:
//!
//! * **Framing** — gzip (`1f 8b 08 …` header, CRC32+ISIZE trailer),
//!   zlib (`78 9c` header, Adler32 trailer), or raw deflate, split
//!   roughly 40/40/20 like traffic in the wild.
//! * **Block structure** — a loop of stored blocks (byte-aligned
//!   `LEN`/`NLEN` headers over incompressible literal bytes, as real
//!   encoders emit them) and fixed/dynamic Huffman blocks (dynamic
//!   blocks carry a code-length-table-shaped section of small RLE-ish
//!   values).
//! * **Huffman-coded texture** — each byte is 7 i.i.d. uniform bits
//!   plus a leading bit that *persists* across the byte boundary
//!   (`P(first bit = previous byte's last bit) ≈ 0.62–0.72` per
//!   block), the dependence Huffman codes leave when their bit
//!   boundaries ignore byte boundaries. The byte marginal stays
//!   exactly uniform — `h1` and chi-square are blind by construction —
//!   and the bigram deviation is far below what `h2` can resolve at
//!   buffer-sized samples, but the battery's runs test counts every
//!   bit transition in sequence order and sits several σ below the
//!   i.i.d. expectation by 1–2 KiB.
//! * **LZ match structure** — a sparse sprinkle (~2.5% of tokens) of
//!   small-step value chains (`vₜ₊₁ = vₜ ± δ`, `δ ≤ 8`) and short byte
//!   runs: chains nudge the small-lag byte autocorrelation, runs give
//!   the longest-byte-run excursions ciphertext essentially never
//!   shows — both too rare to move the k-gram entropies.

use rand::rngs::StdRng;
use rand::Rng;

/// Generates one DEFLATE-shaped compressed stream of roughly `size`
/// bytes. The framing sub-kind (gzip / zlib / raw) is drawn at random.
pub fn generate(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let r: f64 = rng.gen();
    if r < 0.40 {
        gzip_stream(size, rng)
    } else if r < 0.80 {
        zlib_stream(size, rng)
    } else {
        raw_deflate(size, rng)
    }
}

/// gzip framing: 10-byte header, deflate body, CRC32 + ISIZE trailer.
fn gzip_stream(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 32);
    // magic, CM=8 (deflate), FLG=0, MTIME, XFL, OS=3 (unix).
    out.extend_from_slice(&[0x1f, 0x8b, 0x08, 0x00]);
    let mtime: u32 = rng.gen_range(1_500_000_000u32..1_800_000_000u32);
    out.extend_from_slice(&mtime.to_le_bytes());
    out.extend_from_slice(&[if rng.gen::<f64>() < 0.5 { 0x00 } else { 0x02 }, 0x03]);
    let body_target = size.saturating_sub(out.len() + 8).max(16);
    deflate_body(&mut out, body_target, rng);
    // Fake CRC32 (uniform) + ISIZE (a plausible expansion of the body).
    let crc: u32 = rng.gen();
    out.extend_from_slice(&crc.to_le_bytes());
    let isize_field = (body_target as u32).saturating_mul(rng.gen_range(2u32..6u32));
    out.extend_from_slice(&isize_field.to_le_bytes());
    out
}

/// zlib framing: 2-byte header, deflate body, Adler32 trailer.
fn zlib_stream(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size + 8);
    // CMF=0x78 (deflate, 32K window); common FLG values by level.
    let flg = *pick(&[0x01u8, 0x5e, 0x9c, 0xda], rng);
    out.extend_from_slice(&[0x78, flg]);
    let body_target = size.saturating_sub(out.len() + 4).max(16);
    deflate_body(&mut out, body_target, rng);
    // Adler32-shaped trailer: high half is a modest sum, stored
    // big-endian per the spec.
    let s2: u16 = rng.gen_range(0x0100..0x7fff);
    let s1: u16 = rng.gen();
    out.extend_from_slice(&s2.to_be_bytes());
    out.extend_from_slice(&s1.to_be_bytes());
    out
}

/// Bare deflate body with no container framing.
fn raw_deflate(size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut out = Vec::with_capacity(size);
    deflate_body(&mut out, size.max(16), rng);
    out
}

/// Appends `target` bytes of deflate-shaped block structure to `out`.
fn deflate_body(out: &mut Vec<u8>, target: usize, rng: &mut StdRng) {
    let end = out.len() + target;
    while out.len() < end {
        let remaining = end - out.len();
        let kind: f64 = rng.gen();
        if kind < 0.12 && remaining > 64 {
            stored_block(out, remaining, rng);
        } else {
            huffman_block(out, remaining, rng, kind < 0.55);
        }
    }
    out.truncate(end);
}

/// A stored (BTYPE=00) block: header byte, LEN/NLEN, literal bytes.
/// Real encoders fall back to stored blocks exactly when the input is
/// incompressible, so the literal content is high-entropy — stored
/// blocks do *not* give the class away to the entropy vector; only the
/// byte-aligned `LEN`/`NLEN` framing distinguishes them from the
/// surrounding Huffman texture.
fn stored_block(out: &mut Vec<u8>, remaining: usize, rng: &mut StdRng) {
    let len = rng.gen_range(64..=512usize).min(remaining.saturating_sub(5).max(16)) as u16;
    // BFINAL=0, BTYPE=00, then the bit-padding to the byte boundary.
    out.push(0x00);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    for _ in 0..len {
        out.push(rng.gen());
    }
}

/// A fixed (BTYPE=01) or dynamic (BTYPE=10) Huffman block: header,
/// optional code-length-table section, then a persistent-bit payload
/// with LZ-style match mimicry.
fn huffman_block(out: &mut Vec<u8>, remaining: usize, rng: &mut StdRng, fixed: bool) {
    // 3 header bits live in the low bits of the first payload byte in
    // real deflate; a one-byte stand-in keeps the per-block framing
    // visible without a bit-sink.
    out.push(if fixed { 0x03 } else { 0x05 });
    if !fixed {
        code_length_section(out, rng);
    }
    let len = rng.gen_range(768..=3072usize).min(remaining);
    let p_same = rng.gen_range(0.62..0.72);
    let mut prev_bit = rng.gen::<bool>();
    let block_end = out.len() + len;
    while out.len() < block_end {
        let t: f64 = rng.gen();
        if t < 0.975 {
            out.push(persistent_byte(rng, p_same, &mut prev_bit));
        } else if t < 0.99 {
            // Back-reference mimicry: a short chain of nearby values
            // (`v ± δ`, `δ ≤ 8`). Adjacent bytes correlate strongly —
            // the battery's small-lag autocorrelation — but every
            // bigram lands in a fresh bin, so `h2` sees nothing.
            let mut v: u8 = rng.gen();
            for _ in 0..rng.gen_range(3..=5usize) {
                out.push(v);
                let delta = rng.gen_range(1..=8u8);
                v = if rng.gen::<bool>() { v.wrapping_add(delta) } else { v.wrapping_sub(delta) };
            }
        } else {
            // Run token: one byte repeated — the longest-byte-run
            // excursions ciphertext essentially never shows.
            let run_byte: u8 = rng.gen();
            for _ in 0..rng.gen_range(3..=5usize) {
                out.push(run_byte);
            }
        }
    }
    out.truncate(block_end);
}

/// A code-length-table-shaped section: HLIT/HDIST/HCLEN stand-ins plus
/// a short run of small RLE-ish code-length values, as the header of a
/// dynamic-Huffman block would carry.
fn code_length_section(out: &mut Vec<u8>, rng: &mut StdRng) {
    out.push(rng.gen_range(0x00..0x20u8));
    out.push(rng.gen_range(0x00..0x20u8));
    let n = rng.gen_range(12..=28usize);
    let mut v = rng.gen_range(0..8u8);
    for _ in 0..n {
        // Code lengths cluster and move in small steps (values 0..19).
        if rng.gen::<f64>() < 0.4 {
            v = rng.gen_range(0..19u8);
        }
        out.push(v);
    }
}

/// One byte whose leading bit persists across the byte boundary
/// (`P(first bit = last bit of the previous byte) = p_same`) while the
/// remaining 7 bits are i.i.d. uniform. Whatever the previous byte
/// was, each byte value is equally likely — the byte histogram (and
/// so `h1`/chi-square) is uniform *by construction* — yet each
/// boundary transition is biased toward persistence, which the
/// battery's sequence-order runs test accumulates across the whole
/// prefix.
fn persistent_byte(rng: &mut StdRng, p_same: f64, prev_bit: &mut bool) -> u8 {
    let first = if rng.gen::<f64>() < p_same { *prev_bit } else { !*prev_bit };
    let b = (u8::from(first) << 7) | (rng.gen::<u8>() & 0x7F);
    *prev_bit = b & 1 != 0;
    b
}

/// Picks one element uniformly.
fn pick<'a, T>(options: &'a [T], rng: &mut StdRng) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_entropy::entropy;
    use rand::SeedableRng;

    #[test]
    fn streams_sit_in_the_near_ciphertext_entropy_band() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut h1s = Vec::new();
        for _ in 0..30 {
            let data = generate(8192, &mut rng);
            h1s.push(entropy(&data, 1));
        }
        let mean = h1s.iter().sum::<f64>() / h1s.len() as f64;
        assert!(mean > 0.88, "compressed h1 mean too low: {mean:.3}");
        assert!(mean < 0.999, "compressed h1 mean indistinct from uniform: {mean:.5}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(4096, &mut StdRng::seed_from_u64(5));
        let b = generate(4096, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn sizes_are_approximately_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for &size in &[64usize, 1024, 4096, 65536] {
            let data = generate(size, &mut rng);
            assert!(data.len() >= size.min(16), "{} < {}", data.len(), size);
            assert!(data.len() <= size + 64, "{} > {}", data.len(), size);
        }
    }

    #[test]
    fn framing_sub_kinds_all_appear() {
        let mut rng = StdRng::seed_from_u64(9);
        let (mut gz, mut zl, mut raw) = (0, 0, 0);
        for _ in 0..60 {
            let d = generate(2048, &mut rng);
            if d.starts_with(&[0x1f, 0x8b, 0x08]) {
                gz += 1;
            } else if d[0] == 0x78 {
                zl += 1;
            } else {
                raw += 1;
            }
        }
        assert!(gz > 5 && zl > 5 && raw > 2, "gz={gz} zl={zl} raw={raw}");
    }

    #[test]
    fn streams_have_longer_byte_runs_than_ciphertext() {
        // The LZ-mimicry run tokens must show up as byte runs a uniform
        // stream essentially never produces at this length.
        let mut rng = StdRng::seed_from_u64(21);
        let mut saw_long_run = 0;
        for _ in 0..20 {
            let d = generate(4096, &mut rng);
            let mut max_run = 1usize;
            let mut cur = 1usize;
            for w in d.windows(2) {
                if w[0] == w[1] {
                    cur += 1;
                    max_run = max_run.max(cur);
                } else {
                    cur = 1;
                }
            }
            if max_run >= 3 {
                saw_long_run += 1;
            }
        }
        assert!(saw_long_run >= 15, "only {saw_long_run}/20 streams had a run ≥ 3");
    }
}
