//! Application-layer headers: synthesis and signature-based stripping
//! (§4.3 of the paper).
//!
//! Many flows begin with a textual application header even when their
//! payload is binary (e.g. an image fetched over HTTP), which would fool
//! a classifier reading only the first `b` bytes. For well-known
//! protocols the paper strips headers with signature-based detection;
//! for unknown protocols it skips a threshold of `T` bytes. This module
//! provides both the generator used to build realistic test flows and
//! the detector/stripper used by the online pipeline.

use rand::rngs::StdRng;
use rand::Rng;

/// Well-known application protocols with recognizable header formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AppProtocol {
    /// HTTP request or response.
    Http,
    /// SMTP server banner + envelope.
    Smtp,
    /// POP3 greeting + transaction.
    Pop3,
    /// IMAP greeting + tagged commands.
    Imap,
}

impl AppProtocol {
    /// All supported protocols.
    pub const ALL: [AppProtocol; 4] =
        [AppProtocol::Http, AppProtocol::Smtp, AppProtocol::Pop3, AppProtocol::Imap];
}

/// Generates synthetic application-layer headers.
#[derive(Debug, Clone)]
pub struct HeaderGenerator {
    protocol: AppProtocol,
}

impl HeaderGenerator {
    /// Creates a generator for one protocol.
    pub fn new(protocol: AppProtocol) -> Self {
        HeaderGenerator { protocol }
    }

    /// The protocol this generator emits.
    pub fn protocol(&self) -> AppProtocol {
        self.protocol
    }

    /// Generates one header block, terminated the way the protocol
    /// terminates its preamble (`\r\n\r\n` for HTTP, `\r\n` lines for
    /// the mail protocols followed by a blank line marker).
    pub fn generate(&self, rng: &mut StdRng) -> Vec<u8> {
        match self.protocol {
            AppProtocol::Http => self.http(rng),
            AppProtocol::Smtp => self.smtp(rng),
            AppProtocol::Pop3 => self.pop3(rng),
            AppProtocol::Imap => self.imap(rng),
        }
    }

    fn http(&self, rng: &mut StdRng) -> Vec<u8> {
        let mut h = Vec::new();
        if rng.gen_bool(0.5) {
            h.extend_from_slice(
                format!(
                    "GET /assets/img/{:x}.jpg HTTP/1.1\r\nHost: www.example{}.com\r\nUser-Agent: Mozilla/4.0\r\nAccept: */*\r\n",
                    rng.gen::<u32>(),
                    rng.gen_range(1..100)
                )
                .as_bytes(),
            );
        } else {
            h.extend_from_slice(
                format!(
                    "HTTP/1.1 200 OK\r\nServer: Apache/2.0.{}\r\nContent-Type: application/octet-stream\r\nContent-Length: {}\r\n",
                    rng.gen_range(40..64),
                    rng.gen_range(1000..5_000_000)
                )
                .as_bytes(),
            );
        }
        if rng.gen_bool(0.6) {
            h.extend_from_slice(b"Cache-Control: no-cache\r\n");
        }
        h.extend_from_slice(b"\r\n");
        h
    }

    fn smtp(&self, rng: &mut StdRng) -> Vec<u8> {
        format!(
            "220 mail{}.example.org ESMTP ready\r\nEHLO client{}.example.net\r\n250-mail.example.org\r\n250 8BITMIME\r\nMAIL FROM:<a{}@example.org>\r\nRCPT TO:<b{}@example.net>\r\nDATA\r\n",
            rng.gen_range(1..10),
            rng.gen_range(1..10),
            rng.gen_range(1..1000),
            rng.gen_range(1..1000)
        )
        .into_bytes()
    }

    fn pop3(&self, rng: &mut StdRng) -> Vec<u8> {
        format!(
            "+OK POP3 server ready <{}@pop.example.org>\r\nUSER user{}\r\n+OK\r\nPASS hunter2\r\n+OK user{} has {} messages\r\nRETR 1\r\n+OK {} octets\r\n",
            rng.gen::<u32>(),
            rng.gen_range(1..100),
            rng.gen_range(1..100),
            rng.gen_range(1..40),
            rng.gen_range(500..20_000)
        )
        .into_bytes()
    }

    fn imap(&self, rng: &mut StdRng) -> Vec<u8> {
        format!(
            "* OK IMAP4rev1 Service Ready\r\na{:03} LOGIN user{} pass\r\na{:03} OK LOGIN completed\r\na{:03} FETCH 1 BODY[]\r\n",
            rng.gen_range(1..999),
            rng.gen_range(1..100),
            rng.gen_range(1..999),
            rng.gen_range(1..999)
        )
        .into_bytes()
    }
}

/// Byte-prefix signatures for the well-known protocols of §4.3.
const SIGNATURES: &[(&[u8], AppProtocol)] = &[
    (b"GET ", AppProtocol::Http),
    (b"POST ", AppProtocol::Http),
    (b"HEAD ", AppProtocol::Http),
    (b"PUT ", AppProtocol::Http),
    (b"HTTP/1.", AppProtocol::Http),
    (b"220 ", AppProtocol::Smtp),
    (b"EHLO", AppProtocol::Smtp),
    (b"HELO", AppProtocol::Smtp),
    (b"+OK", AppProtocol::Pop3),
    (b"* OK", AppProtocol::Imap),
];

/// Detects a well-known application header at the start of `data` and
/// returns `(protocol, payload_offset)`; `None` when no signature
/// matches (an *unknown* application, handled by the threshold-`T`
/// policy instead).
///
/// For HTTP the header ends at the first `\r\n\r\n`. For the
/// line-oriented mail protocols the header ends after the last
/// greeting/command line that matches the protocol's line grammar
/// (`NNN `-coded, `+OK`/`-ERR`, tagged, or verb lines); the payload
/// begins at the first line that does not.
pub fn strip_application_header(data: &[u8]) -> Option<(AppProtocol, usize)> {
    let (&(_, protocol), _) = SIGNATURES
        .iter()
        .map(|sig| (sig, ()))
        .find(|((prefix, _), ())| data.starts_with(prefix))?;
    match protocol {
        AppProtocol::Http => {
            // Header ends at the blank line.
            let end = find_subslice(data, b"\r\n\r\n").map(|i| i + 4).unwrap_or(data.len());
            Some((protocol, end))
        }
        AppProtocol::Smtp | AppProtocol::Pop3 | AppProtocol::Imap => {
            let mut offset = 0usize;
            while offset < data.len() {
                // lint: allow(L008) — offset < data.len() is the loop guard
                let line_end = match find_subslice(&data[offset..], b"\r\n") {
                    Some(i) => offset + i + 2,
                    None => break,
                };
                // lint: allow(L008) — line_end ends inside data (find_subslice matched the 2-byte needle)
                if !is_protocol_line(&data[offset..line_end]) {
                    break;
                }
                offset = line_end;
            }
            Some((protocol, offset))
        }
    }
}

/// Outcome of scanning a *growing* prefix of a flow for an application
/// header (the streaming counterpart of [`strip_application_header`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderScan {
    /// No known signature matches this prefix and no longer prefix can
    /// change that: an unknown application (threshold-`T` policy).
    Unknown,
    /// The prefix is still ambiguous; feed more bytes and rescan.
    NeedMore,
    /// Header resolved: the payload starts at this offset, and scanning
    /// any extension of this prefix yields the same offset.
    Resolved(AppProtocol, usize),
}

/// Scans a prefix of a flow for a well-known application header,
/// reporting whether the skip/strip decision is already final.
///
/// The decision is *prefix-deterministic*: once `Resolved` or `Unknown`
/// is returned for some prefix, [`strip_application_header`] on any
/// extension agrees (signatures are never prefixes of one another, HTTP
/// headers end at the first `\r\n\r\n`, and the mail protocols end at
/// the first complete non-protocol line). This lets the flow pipeline
/// stop staging raw bytes as soon as the decision lands instead of
/// holding the whole buffer until classification.
pub fn scan_application_header(data: &[u8]) -> HeaderScan {
    let matched = SIGNATURES.iter().find(|(prefix, _)| data.starts_with(prefix));
    let Some(&(_, protocol)) = matched else {
        let could_still_match = SIGNATURES
            .iter()
            .any(|(prefix, _)| prefix.len() > data.len() && prefix.starts_with(data));
        return if could_still_match { HeaderScan::NeedMore } else { HeaderScan::Unknown };
    };
    match protocol {
        AppProtocol::Http => match find_subslice(data, b"\r\n\r\n") {
            Some(i) => HeaderScan::Resolved(protocol, i + 4),
            None => HeaderScan::NeedMore,
        },
        AppProtocol::Smtp | AppProtocol::Pop3 | AppProtocol::Imap => {
            let mut offset = 0usize;
            while offset < data.len() {
                // lint: allow(L008) — offset < data.len() is the loop guard
                let line_end = match find_subslice(&data[offset..], b"\r\n") {
                    Some(i) => offset + i + 2,
                    // Trailing incomplete line: more bytes may complete
                    // it into a protocol line.
                    None => return HeaderScan::NeedMore,
                };
                // lint: allow(L008) — line_end ends inside data (find_subslice matched the 2-byte needle)
                if !is_protocol_line(&data[offset..line_end]) {
                    return HeaderScan::Resolved(protocol, offset);
                }
                offset = line_end;
            }
            // Every complete line so far is protocol chatter; the next
            // line may or may not be.
            HeaderScan::NeedMore
        }
    }
}

/// Whether a line looks like protocol chatter (ASCII, command-ish)
/// rather than message payload.
fn is_protocol_line(raw: &[u8]) -> bool {
    // Drop the CRLF terminator before applying the grammar.
    let mut line = raw;
    while let Some((&last, rest)) = line.split_last() {
        if last == b'\r' || last == b'\n' {
            line = rest;
        } else {
            break;
        }
    }
    if line.len() < 3 || line.len() > 512 {
        return false;
    }
    // All-printable-ASCII is necessary...
    if !line.iter().all(|&b| (0x20..0x7F).contains(&b)) {
        return false;
    }
    // ...and the line must start like a reply code, status, tag, or verb.
    let starts_with_code = line.len() >= 4
        // lint: allow(L008) — short-circuit: line.len() >= 4 holds before the slice
        && line[..3].iter().all(u8::is_ascii_digit)
        // lint: allow(L008) — short-circuit: line.len() >= 4 holds before the index
        && (line[3] == b' ' || line[3] == b'-');
    let starts_with_status =
        line.starts_with(b"+OK") || line.starts_with(b"-ERR") || line.starts_with(b"* ");
    let starts_with_tag = line.first().is_some_and(|&b| b == b'a')
        && line.iter().position(|&b| b == b' ').is_some_and(|i| i <= 6);
    let starts_with_verb = line
        .split(|&b| b == b' ')
        .next()
        .is_some_and(|w| w.len() >= 3 && w.len() <= 8 && w.iter().all(u8::is_ascii_uppercase));
    starts_with_code || starts_with_status || starts_with_tag || starts_with_verb
}

fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn http_header_detected_and_stripped() {
        let mut r = rng(1);
        let gen = HeaderGenerator::new(AppProtocol::Http);
        for _ in 0..20 {
            let mut flow = gen.generate(&mut r);
            let header_len = flow.len();
            flow.extend_from_slice(&[0xFF, 0xD8, 0xFF, 0xE0]); // JPEG payload
            let (proto, offset) = strip_application_header(&flow).expect("detected");
            assert_eq!(proto, AppProtocol::Http);
            assert_eq!(offset, header_len);
            assert_eq!(&flow[offset..offset + 2], &[0xFF, 0xD8]);
        }
    }

    #[test]
    fn smtp_header_detected() {
        let mut r = rng(2);
        let gen = HeaderGenerator::new(AppProtocol::Smtp);
        let mut flow = gen.generate(&mut r);
        let header_len = flow.len();
        flow.extend_from_slice(b"The actual message body follows here, which is prose.\r\n");
        let (proto, offset) = strip_application_header(&flow).expect("detected");
        assert_eq!(proto, AppProtocol::Smtp);
        assert_eq!(offset, header_len);
    }

    #[test]
    fn pop3_and_imap_detected() {
        let mut r = rng(3);
        for proto in [AppProtocol::Pop3, AppProtocol::Imap] {
            let gen = HeaderGenerator::new(proto);
            let mut flow = gen.generate(&mut r);
            flow.extend_from_slice(&[0u8, 1, 2, 200, 220, 255]); // binary body
            let (found, offset) = strip_application_header(&flow).expect("detected");
            assert_eq!(found, proto);
            assert!(offset > 0 && offset <= flow.len() - 6);
        }
    }

    #[test]
    fn unknown_protocol_is_none() {
        assert!(strip_application_header(b"\x7FELF binary payload").is_none());
        assert!(strip_application_header(b"random text that is not a protocol").is_none());
        assert!(strip_application_header(b"").is_none());
    }

    #[test]
    fn http_without_terminator_consumes_all() {
        let data = b"GET /x HTTP/1.1\r\nHost: h\r\n"; // truncated header
        let (_, offset) = strip_application_header(data).expect("detected");
        assert_eq!(offset, data.len());
    }

    #[test]
    fn protocol_line_grammar() {
        assert!(is_protocol_line(b"250 OK\r\n"));
        assert!(is_protocol_line(b"250-mail.example.org\r\n"));
        assert!(is_protocol_line(b"+OK ready\r\n"));
        assert!(is_protocol_line(b"a001 LOGIN user pass\r\n"));
        assert!(is_protocol_line(b"MAIL FROM:<x@y>\r\n"));
        assert!(!is_protocol_line(b"hello world this is body text\r\n"));
        assert!(!is_protocol_line(b"\xFF\xD8\xFF\xE0\r\n"));
        assert!(!is_protocol_line(b"x\r\n"));
    }

    #[test]
    fn every_protocol_generates_crlf_terminated_headers() {
        let mut r = rng(9);
        for proto in AppProtocol::ALL {
            let h = HeaderGenerator::new(proto).generate(&mut r);
            assert!(h.len() > 16, "{proto:?} header too short");
            assert!(h.ends_with(b"\r\n"), "{proto:?} must end a line");
            assert!(h.iter().all(|&b| (0x20..0x7F).contains(&b) || b == b'\r' || b == b'\n'));
        }
    }

    #[test]
    fn http_get_and_response_both_detected() {
        let mut r = rng(10);
        let gen = HeaderGenerator::new(AppProtocol::Http);
        let mut saw_request = false;
        let mut saw_response = false;
        for _ in 0..30 {
            let h = gen.generate(&mut r);
            if h.starts_with(b"GET ") {
                saw_request = true;
            }
            if h.starts_with(b"HTTP/1.1") {
                saw_response = true;
            }
            assert!(strip_application_header(&h).is_some());
        }
        assert!(saw_request && saw_response);
    }

    #[test]
    fn scan_is_prefix_deterministic() {
        // Once the scan resolves on a prefix, the one-shot stripper must
        // agree on every extension — the invariant the streaming
        // pipeline's early header resolution rests on.
        let mut r = rng(17);
        for proto in AppProtocol::ALL {
            let mut flow = HeaderGenerator::new(proto).generate(&mut r);
            // Binary payload whose first "line" completes with CRLF, so
            // the mail protocols can resolve on it.
            flow.extend_from_slice(&[0xFF, 0xD8, 0x00, 0x81, b'\r', b'\n', 0xB4, 0xC5]);
            let mut resolved: Option<usize> = None;
            for len in 0..=flow.len() {
                match scan_application_header(&flow[..len]) {
                    HeaderScan::Resolved(p, off) => {
                        assert_eq!(p, proto, "len={len}");
                        if let Some(prev) = resolved {
                            assert_eq!(off, prev, "resolution must be stable, len={len}");
                        }
                        resolved = Some(off);
                    }
                    HeaderScan::Unknown => panic!("{proto:?} prefix reported unknown at {len}"),
                    HeaderScan::NeedMore => {
                        assert!(resolved.is_none(), "must not unresolve, len={len}");
                    }
                }
            }
            let (_, one_shot) = strip_application_header(&flow).expect("detected");
            assert_eq!(resolved, Some(one_shot), "{proto:?}");
        }
    }

    #[test]
    fn scan_unknown_is_final_and_matches_one_shot() {
        let data = b"\x7FELF binary payload of an unknown protocol";
        for len in [0usize, 1, 2, 7, 8, data.len()] {
            let scan = scan_application_header(&data[..len]);
            if len == 0 {
                assert_eq!(scan, HeaderScan::NeedMore, "empty prefix could become anything");
            } else {
                assert_eq!(scan, HeaderScan::Unknown, "len={len}");
            }
        }
        assert!(strip_application_header(data).is_none());
        // A short prefix of a real signature stays ambiguous.
        assert_eq!(scan_application_header(b"HTT"), HeaderScan::NeedMore);
        assert_eq!(scan_application_header(b"+O"), HeaderScan::NeedMore);
    }

    #[test]
    fn generator_protocol_accessor() {
        assert_eq!(HeaderGenerator::new(AppProtocol::Imap).protocol(), AppProtocol::Imap);
        assert_eq!(AppProtocol::ALL.len(), 4);
    }
}
