//! Property-based tests for the synthetic corpus generators.

use iustitia_corpus::encrypted::base64_encode;
use iustitia_corpus::{
    generate_file, strip_application_header, AppProtocol, FileClass, HeaderGenerator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn class_strategy() -> impl Strategy<Value = FileClass> {
    prop_oneof![Just(FileClass::Text), Just(FileClass::Binary), Just(FileClass::Encrypted),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_files_have_exact_size(
        class in class_strategy(),
        size in 1usize..20_000,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = generate_file(class, size, &mut rng);
        prop_assert_eq!(data.len(), size);
    }

    #[test]
    fn generation_is_deterministic(
        class in class_strategy(),
        size in 1usize..4096,
        seed in any::<u64>(),
    ) {
        let a = generate_file(class, size, &mut StdRng::seed_from_u64(seed));
        let b = generate_file(class, size, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn text_is_printable(size in 64usize..8192, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = generate_file(FileClass::Text, size, &mut rng);
        let printable = data
            .iter()
            .filter(|&&b| (0x20..0x7F).contains(&b) || b == b'\n' || b == b'\r' || b == b'\t')
            .count();
        prop_assert!(printable as f64 / data.len() as f64 > 0.98);
    }

    #[test]
    fn header_stripping_offset_is_in_bounds(
        proto_idx in 0usize..4,
        seed in any::<u64>(),
        tail in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let proto = AppProtocol::ALL[proto_idx];
        let mut rng = StdRng::seed_from_u64(seed);
        let mut flow = HeaderGenerator::new(proto).generate(&mut rng);
        let header_len = flow.len();
        flow.extend_from_slice(&tail);
        let (found, offset) = strip_application_header(&flow).expect("known header");
        prop_assert_eq!(found, proto);
        prop_assert!(offset <= flow.len());
        prop_assert!(offset <= header_len, "offset {offset} must not eat payload (header {header_len})");
    }

    #[test]
    fn stripping_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Some((_, offset)) = strip_application_header(&data) {
            prop_assert!(offset <= data.len());
        }
    }

    #[test]
    fn base64_length_and_alphabet(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let enc = base64_encode(&data);
        prop_assert_eq!(enc.len(), data.len().div_ceil(3) * 4);
        prop_assert!(enc.iter().all(|&b| b.is_ascii_alphanumeric() || b == b'+' || b == b'/' || b == b'='));
    }

    #[test]
    fn rc4_round_trips(key in proptest::collection::vec(any::<u8>(), 1..64), msg in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut enc = iustitia_corpus::Rc4::new(&key);
        let mut dec = iustitia_corpus::Rc4::new(&key);
        let ct = enc.process(&msg);
        prop_assert_eq!(dec.process(&ct), msg);
    }
}
