//! Property-based tests for the core pipeline and SHA-1.

use iustitia::cdb::{CdbConfig, ClassificationDatabase, FlowId};
use iustitia::features::{FeatureExtractor, FeatureMode};
use iustitia::model::{
    AnytimeModel, AnytimeStageModel, ModelKind, NatureModel, ANYTIME_THRESHOLD_DISABLED,
};
use iustitia::pipeline::{
    AnytimeConfig, BatchPacket, HeaderPolicy, Iustitia, PipelineConfig, Verdict,
};
use iustitia::sha1::sha1;
use iustitia_corpus::FileClass;
use iustitia_entropy::FeatureWidths;
use iustitia_ml::{ConfidenceModel, Dataset};
use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A trivial always-valid model for structural pipeline properties.
fn any_model() -> NatureModel {
    let mut ds = Dataset::new(4, FileClass::names());
    for i in 0..16 {
        let x = i as f64 / 20.0;
        ds.push(vec![x, 0.1, 0.1, 0.1], i % FileClass::ALL.len());
    }
    NatureModel::train(&ds, &ModelKind::paper_cart()).expect("every class present")
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0.0f64..100.0,
        any::<[u8; 4]>(),
        any::<u16>(),
        any::<u16>(),
        any::<bool>(),
        0u8..16,
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(t, ip, sp, dp, is_tcp, flag_bits, payload)| {
            let src = Ipv4Addr::from(ip);
            let dst = Ipv4Addr::new(192, 168, 1, 1);
            let tuple = if is_tcp {
                FiveTuple::tcp(src, sp, dst, dp)
            } else {
                FiveTuple::udp(src, sp, dst, dp)
            };
            let mut flags = TcpFlags::empty();
            if is_tcp {
                if flag_bits & 1 != 0 {
                    flags = flags | TcpFlags::SYN;
                }
                if flag_bits & 2 != 0 {
                    flags = flags | TcpFlags::ACK;
                }
                if flag_bits & 4 != 0 {
                    flags = flags | TcpFlags::FIN;
                }
                if flag_bits & 8 != 0 {
                    flags = flags | TcpFlags::RST;
                }
            }
            Packet { timestamp: t, tuple, flags, payload }
        })
}

/// A four-class anytime model fitted at two probe stages over payloads
/// shaped like the hot-flow packet space, with the extractor's battery
/// setting matched to the pipeline under test (a width mismatch would
/// zero every score and the property would never exercise an exit).
fn anytime_fixture(battery: bool) -> AnytimeModel {
    let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 1)
        .with_battery(battery);
    let stage = |fx: &mut FeatureExtractor, bytes: usize| {
        let mut ds = Dataset::new(fx.extract(&[0u8; 4]).len(), FileClass::names());
        let mut lcg: u32 = 0x2545_f491;
        for i in 0..6 {
            let n = bytes + i;
            let text: Vec<u8> = (0..n).map(|j| b'a' + (j % 13) as u8).collect();
            ds.push(fx.extract(&text), FileClass::Text.index());
            ds.push(fx.extract(&vec![0x7f; n]), FileClass::Binary.index());
            let noise: Vec<u8> = (0..n)
                .map(|_| {
                    lcg = lcg.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (lcg >> 24) as u8
                })
                .collect();
            ds.push(fx.extract(&noise), FileClass::Encrypted.index());
            let cycle: Vec<u8> = (0..n).map(|j| (j % 7) as u8).collect();
            ds.push(fx.extract(&cycle), FileClass::Compressed.index());
        }
        ds
    };
    let (ds16, ds48) = (stage(&mut fx, 16), stage(&mut fx, 48));
    let model_for = |ds: &Dataset| {
        NatureModel::train(ds, &ModelKind::paper_cart()).expect("every class present")
    };
    AnytimeModel::new(
        ConfidenceModel::fit(&[(16, &ds16), (48, &ds48)], 0.0),
        vec![
            AnytimeStageModel { bytes: 16, model: model_for(&ds16) },
            AnytimeStageModel { bytes: 48, model: model_for(&ds48) },
        ],
    )
}

/// Packets drawn from a tiny flow space (4 ports, one source), so
/// random sequences contain interleaved flows, same-flow runs, CDB-hit
/// streaks after classification, closes mid-run, and pooled-state
/// recycling — everything the batch grouping has to keep bit-identical.
fn arb_hot_flow_packet() -> impl Strategy<Value = Packet> {
    (0.0f64..40.0, 0u16..4, 0u8..16, proptest::collection::vec(any::<u8>(), 0..64)).prop_map(
        |(t, port, flag_bits, payload)| {
            let src = Ipv4Addr::new(10, 0, 0, 1);
            let dst = Ipv4Addr::new(192, 168, 1, 1);
            let mut flags = TcpFlags::ACK;
            if flag_bits == 1 {
                flags = flags | TcpFlags::FIN;
            }
            if flag_bits == 2 {
                flags = TcpFlags::RST;
            }
            if flag_bits == 3 {
                flags = TcpFlags::SYN;
            }
            Packet {
                timestamp: t,
                tuple: FiveTuple::tcp(src, 4000 + port, dst, 443),
                flags,
                payload,
            }
        },
    )
}

/// Drives `batched` with `process_batch` over `packets` split into
/// consecutive batches whose sizes cycle through `cuts`, returning the
/// concatenated verdicts.
fn run_batched(batched: &mut Iustitia, packets: &[Packet], cuts: &[usize]) -> Vec<Verdict> {
    let mut got = Vec::new();
    let mut verdicts = Vec::new();
    let mut rest = packets;
    let mut i = 0;
    while !rest.is_empty() {
        let take = cuts.get(i % cuts.len().max(1)).copied().unwrap_or(rest.len());
        let take = take.clamp(1, rest.len());
        let (chunk, remainder) = rest.split_at(take);
        let items: Vec<BatchPacket<'_>> = chunk.iter().map(BatchPacket::new).collect();
        batched.process_batch(&items, &mut verdicts);
        assert_eq!(verdicts.len(), chunk.len(), "one verdict per packet");
        got.extend(verdicts.iter().copied());
        rest = remainder;
        i += 1;
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sha1_is_deterministic_and_20_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let a = sha1(&data);
        let b = sha1(&data);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a.len(), 20);
    }

    #[test]
    fn sha1_differs_on_appended_byte(data in proptest::collection::vec(any::<u8>(), 0..256), extra in any::<u8>()) {
        let mut longer = data.clone();
        longer.push(extra);
        prop_assert_ne!(sha1(&data), sha1(&longer));
    }

    #[test]
    fn pipeline_never_panics_on_arbitrary_packets(
        packets in proptest::collection::vec(arb_packet(), 0..80),
    ) {
        let mut pipeline = Iustitia::new(any_model(), PipelineConfig::headline(1));
        for p in &packets {
            let verdict = pipeline.process_packet(p);
            // Structural invariants hold after every packet.
            match verdict {
                Verdict::Hit(_) | Verdict::Classified(_) | Verdict::Buffering | Verdict::Ignored => {}
            }
            prop_assert!(pipeline.cdb().len() <= pipeline.cdb().stats().inserted as usize);
        }
        pipeline.sweep_idle(f64::INFINITY);
        prop_assert_eq!(pipeline.pending_flows(), 0);
    }

    /// The batch tentpole invariant: any batching of any packet
    /// sequence produces bit-identical verdicts AND bit-identical
    /// observable state (queue counters, pending gauges, resident
    /// bytes, CDB contents and churn stats, pool accounting, and the
    /// full classification log — whose labels pin the entropy vectors
    /// through the model's decision bands) to batch-of-one dispatch.
    /// Covers interleaved flows, same-flow hit runs, closes and control
    /// packets mid-batch, idle sweeps, TTL expiry inside hit runs,
    /// header staging, and recycled pooled state.
    #[test]
    fn process_batch_is_bit_identical_to_per_packet(
        packets in proptest::collection::vec(arb_hot_flow_packet(), 0..60),
        cuts in proptest::collection::vec(1usize..16, 0..12),
        policy_sel in 0u8..3,
        battery in any::<bool>(),
        ttl in any::<bool>(),
    ) {
        let policy = match policy_sel {
            0 => HeaderPolicy::None,
            1 => HeaderPolicy::StripKnown { t: 8 },
            _ => HeaderPolicy::RandomSkip { t_max: 5 },
        };
        let config = PipelineConfig {
            header_policy: policy,
            battery,
            cdb: CdbConfig {
                reclassify_after: if ttl { Some(3.0) } else { None },
                ..CdbConfig::default()
            },
            idle_timeout: 5.0,
            ..PipelineConfig::headline(21)
        };
        let mut per_packet = Iustitia::new(any_model(), config.clone());
        let mut batched = Iustitia::new(any_model(), config);

        let expected: Vec<Verdict> = packets.iter().map(|p| per_packet.process_packet(p)).collect();
        let got = run_batched(&mut batched, &packets, &cuts);

        prop_assert_eq!(got, expected, "verdict sequences must be bit-identical");
        prop_assert_eq!(batched.queues(), per_packet.queues());
        prop_assert_eq!(batched.pending_flows(), per_packet.pending_flows());
        prop_assert_eq!(batched.resident_feature_bytes(), per_packet.resident_feature_bytes());
        prop_assert_eq!(batched.cdb().len(), per_packet.cdb().len());
        prop_assert_eq!(batched.cdb().stats(), per_packet.cdb().stats());
        prop_assert_eq!(batched.state_pool_hits(), per_packet.state_pool_hits());
        prop_assert_eq!(batched.state_pool_size(), per_packet.state_pool_size());
        prop_assert_eq!(batched.take_log(), per_packet.take_log());
    }

    /// The anytime extension of the batch invariant: with probes armed
    /// — live thresholds that fire mid-run, the disabled sentinel that
    /// probes but never fires, random strides and floors — any random
    /// packetization must stay bit-identical to per-packet dispatch,
    /// including which verdicts exited early.
    #[test]
    fn process_batch_with_anytime_probes_is_bit_identical(
        packets in proptest::collection::vec(arb_hot_flow_packet(), 0..60),
        cuts in proptest::collection::vec(1usize..16, 0..12),
        battery in any::<bool>(),
        threshold_sel in 0u8..3,
        probe_stride in 1usize..32,
        min_bytes in 0usize..48,
    ) {
        // 0.0 fires on any two agreeing probes (maximal early-exit
        // traffic), 0.6 fires selectively, the sentinel never fires.
        let threshold = match threshold_sel {
            0 => 0.0,
            1 => 0.6,
            _ => ANYTIME_THRESHOLD_DISABLED,
        };
        let config = PipelineConfig {
            battery,
            buffer_size: 96,
            anytime: Some(AnytimeConfig { threshold, min_bytes, probe_stride }),
            idle_timeout: 5.0,
            ..PipelineConfig::headline(21)
        };
        let anytime = anytime_fixture(battery);
        let mut per_packet =
            Iustitia::new(any_model(), config.clone()).with_anytime(anytime.clone());
        let mut batched = Iustitia::new(any_model(), config).with_anytime(anytime);

        let expected: Vec<Verdict> = packets.iter().map(|p| per_packet.process_packet(p)).collect();
        let got = run_batched(&mut batched, &packets, &cuts);

        prop_assert_eq!(got, expected, "verdict sequences must be bit-identical");
        prop_assert_eq!(batched.early_exit_verdicts(), per_packet.early_exit_verdicts());
        if threshold == ANYTIME_THRESHOLD_DISABLED {
            prop_assert_eq!(per_packet.early_exit_verdicts(), 0, "the sentinel must never fire");
        }
        prop_assert_eq!(batched.queues(), per_packet.queues());
        prop_assert_eq!(batched.pending_flows(), per_packet.pending_flows());
        prop_assert_eq!(batched.resident_feature_bytes(), per_packet.resident_feature_bytes());
        prop_assert_eq!(batched.cdb().len(), per_packet.cdb().len());
        prop_assert_eq!(batched.cdb().stats(), per_packet.cdb().stats());
        prop_assert_eq!(batched.state_pool_hits(), per_packet.state_pool_hits());
        prop_assert_eq!(batched.state_pool_size(), per_packet.state_pool_size());
        prop_assert_eq!(batched.take_log(), per_packet.take_log());
    }

    #[test]
    fn feature_extractor_never_panics(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        exact in any::<bool>(),
    ) {
        let mode = if exact {
            FeatureMode::Exact
        } else {
            FeatureMode::Estimated(iustitia_entropy::EstimatorConfig::new(0.5, 0.5).expect("valid"))
        };
        let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), mode, 1);
        let v = fx.extract(&payload);
        prop_assert_eq!(v.len(), 4);
        prop_assert!(v.iter().all(|h| (0.0..=1.0).contains(h)));
    }

    #[test]
    fn cdb_purge_is_idempotent(
        inserts in proptest::collection::vec((any::<u8>(), 0.0f64..10.0), 1..50),
        now in 10.0f64..100.0,
    ) {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        for &(b, t) in &inserts {
            cdb.insert(FlowId([b; 20]), FileClass::Text, t);
        }
        let first = cdb.purge_obsolete(now);
        let second = cdb.purge_obsolete(now);
        prop_assert_eq!(second, 0, "second purge at same time removed {} after {}", second, first);
    }

    #[test]
    fn cdb_len_tracks_inserts_and_removals(bytes in proptest::collection::vec(any::<u8>(), 1..60)) {
        let mut cdb = ClassificationDatabase::new(CdbConfig { n: None, ..CdbConfig::default() });
        let mut distinct = std::collections::HashSet::new();
        for &b in &bytes {
            cdb.insert(FlowId([b; 20]), FileClass::Binary, 0.0);
            distinct.insert(b);
        }
        prop_assert_eq!(cdb.len(), distinct.len());
        for &b in &bytes {
            cdb.remove_on_close(&FlowId([b; 20]));
        }
        prop_assert!(cdb.is_empty());
        prop_assert_eq!(cdb.stats().removed_by_close, distinct.len() as u64);
    }
}
