//! Steady-state allocation test for flow-state pooling.
//!
//! The pooling acceptance criterion: once the pipeline is warm (the
//! flow table, gram tables, scratch vectors, and state pool have
//! reached their working capacity), processing a *recycled* flow from
//! first packet through classification must perform zero heap
//! allocations — the per-packet hot path is indexed adds into
//! pre-sized tables, and the verdict comes from the compiled model's
//! owned-scratch predict.
//!
//! A counting wrapper around the system allocator measures this
//! directly. This file deliberately contains a single `#[test]` so no
//! concurrent test can perturb the global allocation counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use iustitia::features::{FeatureMode, TrainingMethod};
use iustitia::model::{train_anytime_from_corpus, train_from_corpus_battery, ModelKind};
use iustitia::pipeline::{AnytimeConfig, Iustitia, PipelineConfig, Verdict};
use iustitia_entropy::FeatureWidths;
use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
use std::net::Ipv4Addr;

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the system allocator plus a relaxed
// counter increment; no layout or pointer is altered.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

fn data_packet(port: u16, t: f64, payload: &[u8]) -> Packet {
    let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), port, Ipv4Addr::new(10, 0, 0, 2), 443);
    Packet { timestamp: t, tuple, flags: TcpFlags::ACK, payload: payload.to_vec() }
}

#[test]
fn recycled_flow_packets_allocate_nothing_through_classification() {
    let corpus =
        iustitia_corpus::CorpusBuilder::new(33).files_per_class(20).size_range(1024, 4096).build();
    // Battery on: the randomness battery must hold the zero-alloc
    // guarantee too (its state is fixed-size integer accumulators).
    let model = train_from_corpus_battery(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b: 2048 },
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
    )
    .expect("balanced corpus");
    let mut config = PipelineConfig::headline(33);
    config.buffer_size = 2048;
    config.battery = true;
    let mut pipeline = Iustitia::new(model, config);

    // Every flow streams the same realistic payload, so the warm-up
    // flows grow each gram table to exactly the capacity the measured
    // flow needs.
    let payload: Vec<u8> = (0..512u32).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();

    // Warm-up: nine complete flows populate the pool, grow the flow
    // table, size the recycled gram tables and finish scratch, and put
    // the classification log (Vec, cap 16 after 9 pushes) and CDB hash
    // map (cap 14 after 9 inserts) far enough from their growth points
    // that the measured flow's bookkeeping cannot reallocate them.
    let mut t = 0.0;
    for port in 1u16..=9 {
        for seq in 0..4 {
            t += 0.001;
            let verdict = pipeline.process_packet(&data_packet(port, t, &payload));
            if seq < 3 {
                assert_eq!(verdict, Verdict::Buffering);
            } else {
                assert!(matches!(verdict, Verdict::Classified(_)));
            }
        }
    }
    assert!(pipeline.state_pool_hits() >= 8, "warm-up flows must recycle state");
    assert!(pipeline.state_pool_size() >= 1);

    // Measured flow: a fresh flow whose state comes from the pool. All
    // four packets — three buffering, plus the fourth that completes
    // the window, finishes the feature vector into owned scratch, and
    // classifies through the compiled model — must not touch the
    // allocator.
    let hits_before = pipeline.state_pool_hits();
    let packets: Vec<Packet> =
        (0..4).map(|seq| data_packet(100, t + 0.01 + seq as f64 * 0.001, &payload)).collect();
    let before = alloc_calls();
    for (seq, packet) in packets.iter().enumerate() {
        let verdict = pipeline.process_packet(packet);
        if seq < 3 {
            assert_eq!(verdict, Verdict::Buffering);
        } else {
            assert!(matches!(verdict, Verdict::Classified(_)));
        }
    }
    let during = alloc_calls() - before;
    assert_eq!(pipeline.state_pool_hits(), hits_before + 1, "measured flow must be a pool hit");
    assert_eq!(
        during, 0,
        "a steady-state recycled flow must not allocate from first packet \
         through classification (saw {during} allocator calls across 4 packets)"
    );

    // ── Anytime phase ────────────────────────────────────────────────
    // The probe path must hold the same guarantee: both the probe that
    // only arms the patience rule (first packet) and the one that fires
    // the early verdict re-finish the feature vector into owned scratch,
    // predict through a compiled stage model, and score against the
    // centroid stages — none of which may touch the allocator.
    let report = train_anytime_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        2048,
        FeatureMode::Exact,
        &ModelKind::paper_cart(),
        33,
        true,
        0.01,
    )
    .expect("balanced corpus");
    let mut anytime = report.anytime.clone();
    // Pure raw-score gating with an always-pass threshold: every packet
    // runs the full probe (stage predict + centroid score), and the
    // first two consecutive agreeing probes fire the verdict.
    anytime.confidence.set_exit_policy(Vec::new(), u64::MAX);
    anytime.confidence.set_threshold(0.0);
    let mut config = PipelineConfig::headline(33);
    config.buffer_size = 2048;
    config.battery = true;
    config.anytime = Some(AnytimeConfig::calibrated(&anytime.confidence));
    let mut pipeline = Iustitia::new(report.model.clone(), config).with_anytime(anytime);

    // Drives one flow to its verdict, returning how many packets it took.
    fn classify(pipeline: &mut Iustitia, port: u16, t0: f64, payload: &[u8]) -> usize {
        for seq in 0..4 {
            let verdict =
                pipeline.process_packet(&data_packet(port, t0 + seq as f64 * 0.001, payload));
            if matches!(verdict, Verdict::Classified(_)) {
                return seq + 1;
            }
        }
        unreachable!("the fourth packet fills the 2048-byte window");
    }

    let mut t = 100.0;
    for port in 1u16..=9 {
        classify(&mut pipeline, port, t, &payload);
        t += 0.01;
    }
    assert!(pipeline.state_pool_hits() >= 8, "warm-up flows must recycle state");
    assert!(pipeline.early_exit_verdicts() > 0, "warm-up probes must fire early");

    let hits_before = pipeline.state_pool_hits();
    let exits_before = pipeline.early_exit_verdicts();
    // Pre-built packets: the measured window must contain only pipeline
    // work, and an early exit is expected before the fourth packet.
    let probe_packets: Vec<Packet> =
        (0..4).map(|seq| data_packet(100, t + 1.0 + seq as f64 * 0.001, &payload)).collect();
    let before = alloc_calls();
    let mut packets_used = 0;
    for packet in &probe_packets {
        packets_used += 1;
        if matches!(pipeline.process_packet(packet), Verdict::Classified(_)) {
            break;
        }
    }
    let during = alloc_calls() - before;
    assert_eq!(pipeline.state_pool_hits(), hits_before + 1, "measured flow must be a pool hit");
    assert!(
        pipeline.early_exit_verdicts() > exits_before,
        "the measured verdict must come from a probe, not the fed >= b fallback"
    );
    assert!(packets_used < 4, "early exit must beat the fixed-b window");
    assert_eq!(
        during, 0,
        "a recycled flow probed to an early verdict must not allocate \
         (saw {during} allocator calls across {packets_used} packets)"
    );
}
