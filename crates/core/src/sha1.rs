//! SHA-1, implemented from scratch (FIPS 180-1).
//!
//! The paper identifies each flow by a 160-bit SHA-1 hash of its packet
//! header fields ("We use SHA-1 to create 160 bit hash result for each
//! flow", §4.5); CDB records store the full digest. SHA-1 is not
//! collision-resistant by modern standards, but flow identification
//! only needs second-preimage scarcity over 13-byte inputs, so we
//! reproduce the paper's choice faithfully.

/// A 160-bit SHA-1 digest.
pub type Digest = [u8; 20];

/// Computes the SHA-1 digest of `data`.
///
/// # Examples
///
/// ```
/// use iustitia::sha1::sha1;
///
/// let digest = sha1(b"abc");
/// assert_eq!(
///     hex(&digest),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// # fn hex(d: &[u8]) -> String {
/// #     d.iter().map(|b| format!("{b:02x}")).collect()
/// # }
/// ```
pub fn sha1(data: &[u8]) -> Digest {
    let mut h: [u32; 5] = [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0];

    // Full blocks straight from the input; the remainder and padding
    // (0x80, zeros, 64-bit big-endian bit length) go through a fixed
    // stack buffer of at most two blocks. Flow-ID hashing runs on the
    // per-packet path, so this function must not heap-allocate.
    let mut blocks = data.chunks_exact(64);
    for block in blocks.by_ref() {
        compress(&mut h, block);
    }
    let rem = blocks.remainder();
    let mut tail = [0u8; 128];
    // lint: allow(L008) — rem.len() < 64 slices into the [u8; 128] buffer
    tail[..rem.len()].copy_from_slice(rem);
    // lint: allow(L008) — rem.len() < 64 indexes into the [u8; 128] buffer
    tail[rem.len()] = 0x80;
    let tail_len = if rem.len() < 56 { 64 } else { 128 };
    let bit_len = (data.len() as u64).wrapping_mul(8);
    // lint: allow(L008) — tail_len ∈ {64, 128} slices into the [u8; 128] buffer
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    // lint: allow(L008) — tail_len ∈ {64, 128} slices into the [u8; 128] buffer
    for block in tail[..tail_len].chunks_exact(64) {
        compress(&mut h, block);
    }

    let mut out = [0u8; 20];
    for (chunk, word) in out.chunks_exact_mut(4).zip(&h) {
        // lint: allow(L008) — both sides are exactly 4 bytes
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// One SHA-1 compression round over a 64-byte block.
fn compress(h: &mut [u32; 5], block: &[u8]) {
    let mut w = [0u32; 80];
    for (wi, word) in w.iter_mut().zip(block.chunks_exact(4)) {
        // lint: allow(L008) — chunks_exact(4) yields exactly 4 bytes
        *wi = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
    }
    for i in 16..80 {
        // lint: allow(L008) — indices 16..80 into the [u32; 80] schedule
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *h;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5A827999),
            20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
            _ => (b ^ c ^ d, 0xCA62C1D6),
        };
        let temp =
            a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = temp;
    }
    for (hi, v) in h.iter_mut().zip([a, b, c, d, e]) {
        *hi = hi.wrapping_add(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(hex(&sha1(b"abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&sha1(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn empty_input() {
        assert_eq!(hex(&sha1(b"")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(hex(&sha1(&data)), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn padding_boundaries() {
        // Inputs of exactly 55, 56, 63, 64 bytes exercise the padding
        // edge cases (55 fits one block; 56+ spills to two).
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0x42u8; n];
            let d1 = sha1(&data);
            let d2 = sha1(&data);
            assert_eq!(d1, d2);
            assert_ne!(d1, [0u8; 20]);
        }
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        assert_ne!(sha1(b"flow-a"), sha1(b"flow-b"));
        assert_ne!(sha1(b"\x00"), sha1(b"\x00\x00"));
    }
}
