//! # Iustitia — high-speed flow nature identification
//!
//! A faithful reproduction of *"Iustitia: An Information Theoretical
//! Approach to High-speed Flow Nature Identification"* (Khakpour & Liu,
//! ICDCS 2009): classify network flows as **text**, **binary**, or
//! **encrypted** from the entropy vector of their first `b` payload
//! bytes, at line rate, with a few hundred bytes of state per new flow.
//!
//! The key observation: text flows have the lowest entropy, encrypted
//! flows the highest, and binary flows sit in between — at every gram
//! width. A classifier (CART or SVM-RBF via DAGSVM) trained offline on
//! labeled files turns that observation into an online packet-path
//! component:
//!
//! ```text
//! packet ─▶ SHA-1(header) ─▶ CDB hit? ──yes──▶ labeled output queue
//!                               │ no
//!                               ▼
//!                    per-flow buffer (b bytes)
//!                               │ full / idle
//!                               ▼
//!              entropy vector (exact or (δ,ε)-estimated)
//!                               ▼
//!                 CART / DAGSVM ─▶ label ─▶ CDB
//! ```
//!
//! ## Crate map
//!
//! * [`sha1`] — the 160-bit flow hash (from scratch).
//! * [`features`] — entropy-vector extraction and the `H_F`/`H_b`/`H_b′`
//!   training regimes.
//! * [`model`] — trained CART / SVM flow-nature models.
//! * [`cdb`] — the Classification Database with FIN/RST, `n·λ′`, and
//!   TTL purging.
//! * [`persist`] — save/load trained models as JSON.
//! * [`pipeline`] — the online engine of Figure 1.
//! * [`analysis`] — trace-driven delay/CDB time series (Figures 8, 10).
//! * [`concurrent`] — flow-sharded multi-core deployment.
//! * [`defense`] — §4.6 padding attacks and mitigations.
//! * [`tunnel`] — §4.6 tunnel policy (encrypted tunnel vs inner flows).
//!
//! Substrates live in sibling crates: `iustitia-entropy` (information
//! theory), `iustitia-ml` (CART/SVM/DAGSVM), `iustitia-corpus`
//! (synthetic labeled content), `iustitia-netsim` (packets and traces).
//!
//! ## Quickstart
//!
//! ```
//! use iustitia::prelude::*;
//!
//! // 1. Synthesize a labeled corpus (stands in for the paper's file pool).
//! let corpus = CorpusBuilder::new(7).files_per_class(20).size_range(1024, 4096).build();
//!
//! // 2. Train on the first 32 bytes of each file (the paper's best
//! //    small-buffer regime) with the φ′_CART feature set.
//! let widths = FeatureWidths::cart_selected();
//! let train = dataset_from_corpus(
//!     &corpus, &widths, TrainingMethod::Prefix { b: 32 }, FeatureMode::Exact, 1,
//! );
//! let model = NatureModel::train(&train, &ModelKind::paper_cart()).expect("train");
//!
//! // 3. Classify flows online.
//! let mut iustitia = Iustitia::new(model, PipelineConfig::headline(1));
//! # let _ = &mut iustitia;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cdb;
pub mod concurrent;
pub mod defense;
pub mod features;
pub mod model;
pub mod persist;
pub mod pipeline;
pub mod sha1;
pub mod tunnel;

pub use iustitia_corpus::FileClass;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::analysis::{run_over_trace, DelayComponents, TraceRunReport};
    pub use crate::cdb::{CdbConfig, ClassificationDatabase, FlowId};
    pub use crate::concurrent::{ShardedIustitia, ShardedReport};
    pub use crate::defense::{pad_flow, PaddingAttacker};
    pub use crate::features::{dataset_from_corpus, FeatureExtractor, FeatureMode, TrainingMethod};
    pub use crate::model::{ModelKind, NatureModel};
    pub use crate::pipeline::{HeaderPolicy, Iustitia, PipelineConfig, Verdict};
    pub use crate::tunnel::{classify_tunnel, InnerFlowKey, TunnelSegment, TunnelVerdict};
    pub use iustitia_corpus::{CorpusBuilder, FileClass, LabeledFile};
    pub use iustitia_entropy::{EstimatorConfig, FeatureWidths};
    pub use iustitia_ml::{Classifier, ConfusionMatrix, Dataset};
    pub use iustitia_netsim::{ContentMode, Packet, TraceConfig, TraceGenerator};
}

#[cfg(test)]
mod tests {
    /// The crates' key types should be Send + Sync so the pipeline can
    /// be sharded across threads.
    #[test]
    fn key_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::model::NatureModel>();
        assert_send_sync::<crate::cdb::ClassificationDatabase>();
        assert_send_sync::<crate::pipeline::Iustitia>();
    }
}
