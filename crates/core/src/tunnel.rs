//! Tunnel handling (§4.6).
//!
//! "A tunnel may contain multiple flows with different natures. If the
//! tunnel is encrypted, we classify the tunnel as an encrypted flow. If
//! the tunnel is not encrypted, we should distinguish every flow inside
//! the tunnel and classify them separately."
//!
//! This module implements exactly that policy: classify the *outer*
//! byte stream first; only when it is not encrypted, demultiplex the
//! inner flows (by whatever inner key the encapsulation exposes — a
//! GRE key, an inner 5-tuple hash, a VLAN tag) and classify each inner
//! flow from its own first `b` bytes.

use std::collections::HashMap;

use iustitia_corpus::FileClass;

use crate::features::FeatureExtractor;
use crate::model::NatureModel;

/// Identifier of one flow inside a tunnel (inner 5-tuple hash, GRE key,
/// session ID — whatever the encapsulation exposes).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct InnerFlowKey(pub u32);

/// One decapsulated segment of a tunnel: which inner flow it belongs to
/// and its payload bytes, in tunnel order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunnelSegment {
    /// Inner flow this segment belongs to.
    pub inner: InnerFlowKey,
    /// Payload bytes of the segment.
    pub payload: Vec<u8>,
}

/// The §4.6 tunnel policy outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum TunnelVerdict {
    /// The outer stream is encrypted; inner flows are opaque and the
    /// tunnel is classified as one encrypted flow.
    EncryptedTunnel,
    /// The outer stream is cleartext; every inner flow got its own
    /// label.
    PerFlow(HashMap<InnerFlowKey, FileClass>),
}

/// Classifies a tunnel per §4.6: outer stream first, inner flows only
/// when the tunnel is cleartext.
///
/// `b` is the buffer size used for both the outer and the per-inner-flow
/// classifications; segments must be given in tunnel byte order.
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureExtractor, FeatureMode, TrainingMethod};
/// use iustitia::model::{train_from_corpus, ModelKind};
/// use iustitia::tunnel::{classify_tunnel, InnerFlowKey, TunnelSegment, TunnelVerdict};
/// use iustitia_corpus::{CorpusBuilder, FileClass};
/// use iustitia_entropy::FeatureWidths;
///
/// let corpus = CorpusBuilder::new(1).files_per_class(20).size_range(512, 2048).build();
/// let widths = FeatureWidths::svm_selected();
/// let model = train_from_corpus(
///     &corpus, &widths, TrainingMethod::Prefix { b: 64 }, FeatureMode::Exact,
///     &ModelKind::paper_cart(), 1,
/// )
/// .expect("balanced corpus");
/// let mut fx = FeatureExtractor::new(widths, FeatureMode::Exact, 1);
///
/// // A cleartext tunnel carrying one text flow.
/// let segments = vec![TunnelSegment {
///     inner: InnerFlowKey(1),
///     payload: b"the quick brown fox jumps over the lazy dog again and again".to_vec(),
/// }];
/// match classify_tunnel(&segments, &model, &mut fx, 64) {
///     TunnelVerdict::PerFlow(map) => assert_eq!(map[&InnerFlowKey(1)], FileClass::Text),
///     TunnelVerdict::EncryptedTunnel => panic!("cleartext tunnel"),
/// }
/// ```
pub fn classify_tunnel(
    segments: &[TunnelSegment],
    model: &NatureModel,
    extractor: &mut FeatureExtractor,
    b: usize,
) -> TunnelVerdict {
    // 1. Outer stream: the first b bytes of the tunnel as carried on
    //    the wire.
    let mut outer = Vec::with_capacity(b);
    for seg in segments {
        let take = (b - outer.len()).min(seg.payload.len());
        outer.extend_from_slice(&seg.payload[..take]);
        if outer.len() >= b {
            break;
        }
    }
    let outer_label = model.predict(&extractor.extract(&outer));
    if outer_label == FileClass::Encrypted {
        return TunnelVerdict::EncryptedTunnel;
    }

    // 2. Cleartext tunnel: demultiplex and classify each inner flow
    //    from its own first b bytes.
    let mut inner_buffers: HashMap<InnerFlowKey, Vec<u8>> = HashMap::new();
    for seg in segments {
        let buf = inner_buffers.entry(seg.inner).or_default();
        if buf.len() < b {
            let take = (b - buf.len()).min(seg.payload.len());
            buf.extend_from_slice(&seg.payload[..take]);
        }
    }
    let labels = inner_buffers
        .into_iter()
        .map(|(key, buf)| (key, model.predict(&extractor.extract(&buf))))
        .collect();
    TunnelVerdict::PerFlow(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureMode, TrainingMethod};
    use crate::model::{train_from_corpus, ModelKind};
    use iustitia_corpus::{CorpusBuilder, Rc4};
    use iustitia_entropy::FeatureWidths;

    fn setup(b: usize) -> (NatureModel, FeatureExtractor) {
        let corpus = CorpusBuilder::new(9).files_per_class(40).size_range(1024, 4096).build();
        let widths = FeatureWidths::svm_selected();
        let model = train_from_corpus(
            &corpus,
            &widths,
            TrainingMethod::Prefix { b },
            FeatureMode::Exact,
            &ModelKind::paper_cart(),
            9,
        )
        .expect("train");
        (model, FeatureExtractor::new(widths, FeatureMode::Exact, 9))
    }

    fn text_bytes(n: usize) -> Vec<u8> {
        b"please review the attached report and send your comments by friday. "
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    #[test]
    fn encrypted_tunnel_short_circuits() {
        let (model, mut fx) = setup(64);
        // Inner content is text, but the tunnel encrypts everything.
        let mut rc4 = Rc4::new(b"tunnel-key");
        let segments: Vec<TunnelSegment> = (0..4)
            .map(|i| TunnelSegment {
                inner: InnerFlowKey(i),
                payload: rc4.process(&text_bytes(100)),
            })
            .collect();
        assert_eq!(classify_tunnel(&segments, &model, &mut fx, 64), TunnelVerdict::EncryptedTunnel);
    }

    #[test]
    fn cleartext_tunnel_classifies_each_inner_flow() {
        let (model, mut fx) = setup(64);
        let mut rc4 = Rc4::new(b"inner-secret");
        let segments = vec![
            TunnelSegment { inner: InnerFlowKey(1), payload: text_bytes(120) },
            TunnelSegment { inner: InnerFlowKey(2), payload: rc4.keystream(120) },
            TunnelSegment { inner: InnerFlowKey(1), payload: text_bytes(120) },
        ];
        match classify_tunnel(&segments, &model, &mut fx, 64) {
            TunnelVerdict::PerFlow(map) => {
                assert_eq!(map.len(), 2);
                assert_eq!(map[&InnerFlowKey(1)], FileClass::Text);
                assert_eq!(map[&InnerFlowKey(2)], FileClass::Encrypted);
            }
            TunnelVerdict::EncryptedTunnel => panic!("tunnel is cleartext"),
        }
    }

    #[test]
    fn inner_buffers_accumulate_across_segments() {
        let (model, mut fx) = setup(64);
        // Each segment alone is below b; together they fill the buffer.
        let chunks = text_bytes(64);
        let segments: Vec<TunnelSegment> = chunks
            .chunks(16)
            .map(|c| TunnelSegment { inner: InnerFlowKey(7), payload: c.to_vec() })
            .collect();
        match classify_tunnel(&segments, &model, &mut fx, 64) {
            TunnelVerdict::PerFlow(map) => assert_eq!(map[&InnerFlowKey(7)], FileClass::Text),
            TunnelVerdict::EncryptedTunnel => panic!("cleartext"),
        }
    }

    #[test]
    fn empty_tunnel_yields_empty_per_flow_map() {
        let (model, mut fx) = setup(32);
        match classify_tunnel(&[], &model, &mut fx, 32) {
            TunnelVerdict::PerFlow(map) => assert!(map.is_empty()),
            TunnelVerdict::EncryptedTunnel => panic!("empty outer stream is all-zero entropy"),
        }
    }
}
