//! The trained flow-nature model: CART or SVM (DAGSVM multi-class),
//! plus the offline training entry point of Figure 1's right half.

use iustitia_corpus::FileClass;
use iustitia_ml::cart::{CartParams, DecisionTree};
use iustitia_ml::compiled::{CompiledDag, CompiledTree, CompiledVote};
use iustitia_ml::multiclass::{DagSvm, OneVsOneVote};
use iustitia_ml::svm::SvmParams;
pub use iustitia_ml::{CentroidStage, ConfidenceModel};
use iustitia_ml::{Classifier, Dataset, DimensionMismatch};

/// Which learning algorithm to train (the paper evaluates both).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// CART decision tree.
    Cart(CartParams),
    /// SVM with DAGSVM multi-class evaluation (the paper's default).
    Svm(SvmParams),
    /// SVM with one-vs-one max-wins voting (ablation baseline).
    SvmVote(SvmParams),
}

impl ModelKind {
    /// The paper's CART configuration.
    pub fn paper_cart() -> Self {
        ModelKind::Cart(CartParams::default())
    }

    /// The paper's best model: SVM-RBF `γ=50, C=1000` via DAGSVM.
    pub fn paper_svm() -> Self {
        ModelKind::Svm(SvmParams::paper_rbf())
    }
}

/// A trained flow-nature classifier
/// (text / binary / encrypted / compressed).
///
/// # Examples
///
/// ```
/// use iustitia::model::{ModelKind, NatureModel};
/// use iustitia_corpus::FileClass;
/// use iustitia_ml::Dataset;
///
/// // Tiny hand-made dataset on two features (h1, chi): text low,
/// // binary mid; encrypted and compressed share the high-h1 band and
/// // are split by the second (randomness-battery) feature.
/// let mut ds = Dataset::new(2, FileClass::names());
/// for i in 0..20 {
///     let x = i as f64 / 100.0;
///     ds.push(vec![0.45 + x, 0.05], FileClass::Text.index());
///     ds.push(vec![0.70 + x, 0.05], FileClass::Binary.index());
///     ds.push(vec![0.97 + x / 10.0, 0.02 + x / 10.0], FileClass::Encrypted.index());
///     ds.push(vec![0.96 + x / 10.0, 0.60 + x], FileClass::Compressed.index());
/// }
/// let model = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("all classes present");
/// assert_eq!(model.predict(&[0.5, 0.05]), FileClass::Text);
/// assert_eq!(model.predict(&[0.99, 0.03]), FileClass::Encrypted);
/// assert_eq!(model.predict(&[0.99, 0.7]), FileClass::Compressed);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NatureModel {
    /// A trained decision tree.
    Cart(DecisionTree),
    /// Trained pairwise SVMs evaluated as a decision DAG.
    Svm(DagSvm),
    /// Trained pairwise SVMs evaluated by max-wins voting.
    SvmVote(OneVsOneVote),
}

/// Why [`NatureModel::train`] could not produce a model.
///
/// The pairwise SVM fits (and per-class accuracy accounting) need at
/// least one sample of every class the dataset declares; a 4-class
/// retrain over a corpus that forgot one class used to panic deep in
/// the SMO solver — now it surfaces here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The dataset holds no samples at all.
    EmptyDataset,
    /// A declared class has no samples.
    MissingClass {
        /// Index of the absent class.
        index: usize,
        /// Its name from the dataset's class list.
        name: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => f.write_str("cannot train on an empty dataset"),
            TrainError::MissingClass { index, name } => {
                write!(f, "cannot train: class {index} ({name}) has no samples")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl NatureModel {
    /// Trains a model of the requested kind on an entropy-vector (or
    /// entropy + randomness-battery) dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the dataset is empty or is missing a
    /// class (the SVM needs samples of every pair).
    pub fn train(data: &Dataset, kind: &ModelKind) -> Result<Self, TrainError> {
        if data.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        if let Some(index) = data.class_counts().iter().position(|&c| c == 0) {
            let name = data.class_names()[index].clone();
            return Err(TrainError::MissingClass { index, name });
        }
        Ok(match kind {
            ModelKind::Cart(params) => NatureModel::Cart(DecisionTree::fit(data, params)),
            ModelKind::Svm(params) => NatureModel::Svm(DagSvm::fit(data, params)),
            ModelKind::SvmVote(params) => NatureModel::SvmVote(OneVsOneVote::fit(data, params)),
        })
    }

    /// Predicts the flow nature for one entropy vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality for the
    /// trained model.
    pub fn predict(&self, features: &[f64]) -> FileClass {
        let idx = match self {
            NatureModel::Cart(m) => m.predict(features),
            NatureModel::Svm(m) => m.predict(features),
            NatureModel::SvmVote(m) => m.predict(features),
        };
        FileClass::from_index(idx)
    }

    /// Accuracy over a labeled dataset.
    pub fn accuracy_on(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let ok = data.iter().filter(|(x, y)| self.predict(x).index() == *y).count();
        ok as f64 / data.len() as f64
    }

    /// Confusion matrix over a labeled dataset.
    pub fn confusion_on(&self, data: &Dataset) -> iustitia_ml::ConfusionMatrix {
        let mut cm = iustitia_ml::ConfusionMatrix::new(data.n_classes());
        for (x, y) in data.iter() {
            cm.record(y, self.predict(x).index());
        }
        cm
    }

    /// Feature-vector width the model was trained on (entropy widths
    /// alone, or widths + battery statistics).
    pub fn n_features(&self) -> usize {
        match self {
            NatureModel::Cart(m) => m.n_features(),
            NatureModel::Svm(m) => m.n_features(),
            NatureModel::SvmVote(m) => m.n_features(),
        }
    }

    /// Compiles the model into its flat, allocation-free inference form
    /// (see [`iustitia_ml::compiled`]). Predictions are bit-identical;
    /// the pipeline compiles every model it is handed at
    /// construction/load time and classifies through the compiled path.
    pub fn compile(&self) -> CompiledNatureModel {
        match self {
            NatureModel::Cart(m) => CompiledNatureModel::Cart(CompiledTree::compile(m)),
            NatureModel::Svm(m) => CompiledNatureModel::Svm(CompiledDag::compile(m)),
            NatureModel::SvmVote(m) => CompiledNatureModel::SvmVote(CompiledVote::compile(m)),
        }
    }
}

/// The compiled inference counterpart of [`NatureModel`]: flattened
/// tree nodes / packed shared support vectors, with owned scratch so
/// `predict` performs zero heap allocations (hence `&mut self` — the
/// scratch never changes results).
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledNatureModel {
    /// A compiled decision tree.
    Cart(CompiledTree),
    /// A compiled DAGSVM.
    Svm(CompiledDag),
    /// A compiled one-vs-one voter.
    SvmVote(CompiledVote),
}

impl CompiledNatureModel {
    /// Predicts the flow nature, or reports a feature-width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&mut self, features: &[f64]) -> Result<FileClass, DimensionMismatch> {
        let idx = match self {
            CompiledNatureModel::Cart(m) => m.try_predict(features)?,
            CompiledNatureModel::Svm(m) => m.try_predict(features)?,
            CompiledNatureModel::SvmVote(m) => m.try_predict(features)?,
        };
        Ok(FileClass::from_index(idx))
    }

    /// Predicts the flow nature together with the model's own
    /// confidence margin in `[0, 1]`: CART leaf purity, DAGSVM
    /// path margin, or one-vs-one vote spread (see the compiled types
    /// in [`iustitia_ml::compiled`]). The label is bit-identical to
    /// [`try_predict`](Self::try_predict); the margin feeds the anytime
    /// early-exit confidence score.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict_with_margin(
        &mut self,
        features: &[f64],
    ) -> Result<(FileClass, f64), DimensionMismatch> {
        let (idx, margin) = match self {
            CompiledNatureModel::Cart(m) => m.try_predict_with_margin(features)?,
            CompiledNatureModel::Svm(m) => m.try_predict_with_margin(features)?,
            CompiledNatureModel::SvmVote(m) => m.try_predict_with_margin(features)?,
        };
        Ok((FileClass::from_index(idx), margin))
    }

    /// Predicts the flow nature for one entropy vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](Self::try_predict) for a typed error.
    pub fn predict(&mut self, features: &[f64]) -> FileClass {
        match self.try_predict(features) {
            Ok(label) => label,
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        match self {
            CompiledNatureModel::Cart(m) => m.n_features(),
            CompiledNatureModel::Svm(m) => m.n_features(),
            CompiledNatureModel::SvmVote(m) => m.n_features(),
        }
    }
}

/// Trains a flow-nature model directly from a labeled file corpus:
/// extract entropy vectors under the chosen training regime, then fit.
///
/// This is the offline half of Figure 1 in one call.
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureMode, TrainingMethod};
/// use iustitia::model::{train_from_corpus, ModelKind};
/// use iustitia_corpus::{CorpusBuilder, FileClass};
/// use iustitia_entropy::FeatureWidths;
///
/// let corpus = CorpusBuilder::new(1).files_per_class(15).size_range(512, 2048).build();
/// let model = train_from_corpus(
///     &corpus,
///     &FeatureWidths::cart_selected(),
///     TrainingMethod::Prefix { b: 32 },
///     FeatureMode::Exact,
///     &ModelKind::paper_cart(),
///     1,
/// )
/// .expect("balanced corpus has every class");
/// // The model classifies 32-byte ciphertext prefixes as encrypted for
/// // most draws; sanity-check it at least answers with a valid class.
/// let label = model.predict(&[0.6, 0.5, 0.45, 0.4]);
/// assert!(FileClass::ALL.contains(&label));
/// ```
///
/// # Errors
///
/// Returns [`TrainError`] if the corpus is empty or omits a class.
pub fn train_from_corpus(
    files: &[iustitia_corpus::LabeledFile],
    widths: &iustitia_entropy::FeatureWidths,
    method: crate::features::TrainingMethod,
    mode: crate::features::FeatureMode,
    kind: &ModelKind,
    seed: u64,
) -> Result<NatureModel, TrainError> {
    let ds = crate::features::dataset_from_corpus(files, widths, method, mode, seed);
    NatureModel::train(&ds, kind)
}

/// Like [`train_from_corpus`], but appends the randomness-test battery
/// ([`iustitia_entropy::RandomnessBattery`]) features to every entropy
/// vector — the feature set that separates compressed from encrypted.
///
/// # Errors
///
/// Returns [`TrainError`] if the corpus is empty or omits a class.
pub fn train_from_corpus_battery(
    files: &[iustitia_corpus::LabeledFile],
    widths: &iustitia_entropy::FeatureWidths,
    method: crate::features::TrainingMethod,
    mode: crate::features::FeatureMode,
    kind: &ModelKind,
    seed: u64,
) -> Result<NatureModel, TrainError> {
    let ds = crate::features::dataset_from_corpus_battery(files, widths, method, mode, seed, true);
    NatureModel::train(&ds, kind)
}

/// Prefix-size grid (bytes) at which anytime centroid stages are
/// fitted and held-out probes simulated: powers of two from 64 up to,
/// but excluding, the full buffer `b` (a probe at `fed == b` is the
/// fixed-`b` cap, not an early exit).
const ANYTIME_STAGE_GRID: [usize; 7] = [64, 128, 256, 512, 1024, 2048, 4096];

/// Candidate emission thresholds the calibration sweep evaluates. The
/// centroid-separation score compresses toward zero in high dimensions
/// (a member's distance to its own centroid grows with feature count
/// while the rival gap does not), so the grid reaches well below 0.5.
const ANYTIME_THRESHOLD_GRID: [f64; 15] =
    [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.85, 0.90, 0.95, 0.99];

/// Sentinel threshold meaning "never fire": scores are clamped to
/// `[0, 1]`, so no probe can clear it. Calibration falls back to this
/// when no candidate threshold holds the accuracy floor.
pub const ANYTIME_THRESHOLD_DISABLED: f64 = 2.0;

/// One prefix-stage nature model of an [`AnytimeModel`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnytimeStageModel {
    /// Prefix size (bytes fed) this model was trained at.
    pub bytes: u64,
    /// Nature model fitted on feature vectors from that prefix size.
    pub model: NatureModel,
}

/// Everything the pipeline needs to render anytime verdicts: the
/// calibrated centroid/confidence model plus one nature model per
/// centroid stage. Partial-prefix entropy vectors drift systematically
/// with bytes seen — the full-`b` model is near chance on small
/// prefixes — so each probe predicts with the model fitted at its own
/// prefix size and the centroid separation at that stage gates the
/// emission.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnytimeModel {
    /// Calibrated centroid stages + emission threshold.
    pub confidence: ConfidenceModel,
    /// One nature model per centroid stage, ascending in `bytes` and
    /// aligned with `confidence.stages()`.
    stage_models: Vec<AnytimeStageModel>,
}

impl AnytimeModel {
    /// Pairs a confidence model with its per-stage nature models.
    ///
    /// # Panics
    ///
    /// Panics if the stage models do not line up one-to-one with the
    /// confidence model's centroid stages.
    pub fn new(confidence: ConfidenceModel, stage_models: Vec<AnytimeStageModel>) -> AnytimeModel {
        assert_eq!(
            confidence.stages().len(),
            stage_models.len(),
            "one stage model per centroid stage"
        );
        for (stage, model) in confidence.stages().iter().zip(&stage_models) {
            assert_eq!(stage.bytes, model.bytes, "stage model bytes must match centroid stage");
        }
        AnytimeModel { confidence, stage_models }
    }

    /// The per-stage nature models, ascending in `bytes`.
    pub fn stage_models(&self) -> &[AnytimeStageModel] {
        &self.stage_models
    }
}

/// One calibration operating point: running the anytime rule at
/// `threshold` over the held-out files yields this accuracy and mean
/// bytes-to-verdict.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnytimeOperatingPoint {
    /// Emission threshold evaluated.
    pub threshold: f64,
    /// Held-out accuracy under the early-exit rule at this threshold.
    pub accuracy: f64,
    /// Mean bytes fed when the verdict fired (early or at the cap).
    pub mean_bytes_to_verdict: f64,
    /// Fraction of held-out files that exited before the `b`-byte cap.
    pub early_fraction: f64,
}

/// Everything `train_anytime_from_corpus` produces: the nature model,
/// the calibrated confidence model, the fixed-`b` baseline it was
/// calibrated against, and the full threshold sweep (frozen by the
/// regression tests and plotted by the bench sweep bin).
#[derive(Debug, Clone)]
pub struct AnytimeTrainReport {
    /// The trained nature model (fitted on the train split).
    pub model: NatureModel,
    /// Calibrated confidence model plus per-stage nature models.
    pub anytime: AnytimeModel,
    /// Held-out accuracy of the plain fixed-`b` rule.
    pub full_accuracy: f64,
    /// Mean bytes-to-verdict of the plain fixed-`b` rule (the cap,
    /// shortened only by files smaller than `b`).
    pub full_mean_bytes: f64,
    /// One operating point per candidate threshold, in grid order.
    pub curve: Vec<AnytimeOperatingPoint>,
}

/// Trains a nature model *and* a calibrated anytime confidence model
/// from one corpus.
///
/// The corpus is split per class (every 4th file held out,
/// deterministically). The nature model trains on the train split at
/// `Prefix { b }`; per-class centroid stages and per-stage nature
/// models are fitted on the train split at every grid prefix below
/// `b`; then the held-out files are replayed through the early-exit
/// rule (patience: two consecutive agreeing probes) over a joint grid
/// of exit policies — grouped per-class byte floors and the
/// trusted-stage mark — and emission thresholds. The calibrated
/// operating point is the one with the smallest mean bytes-to-verdict
/// whose accuracy stays within `accuracy_floor` of the fixed-`b`
/// baseline (e.g. `0.01` = at most one point of accuracy given up).
/// If no candidate qualifies, the threshold is pinned to
/// [`ANYTIME_THRESHOLD_DISABLED`] so the pipeline degenerates to the
/// fixed-`b` rule.
///
/// # Errors
///
/// Returns [`TrainError`] if the train split is empty or omits a class.
///
/// # Panics
///
/// Panics if `b == 0`.
#[allow(clippy::too_many_arguments)]
pub fn train_anytime_from_corpus(
    files: &[iustitia_corpus::LabeledFile],
    widths: &iustitia_entropy::FeatureWidths,
    b: usize,
    mode: crate::features::FeatureMode,
    kind: &ModelKind,
    seed: u64,
    battery: bool,
    accuracy_floor: f64,
) -> Result<AnytimeTrainReport, TrainError> {
    assert!(b > 0, "buffer size must be positive");
    // Deterministic stratified split: every 4th file of each class is
    // held out for calibration.
    let mut seen = [0usize; 8];
    let mut train: Vec<iustitia_corpus::LabeledFile> = Vec::new();
    let mut held: Vec<&iustitia_corpus::LabeledFile> = Vec::new();
    for file in files {
        let c = file.class.index().min(seen.len() - 1);
        if seen[c] % 4 == 0 {
            held.push(file);
        } else {
            train.push(file.clone());
        }
        seen[c] += 1;
    }

    let method = crate::features::TrainingMethod::Prefix { b };
    let train_ds = crate::features::dataset_from_corpus_battery(
        &train,
        widths,
        method,
        mode.clone(),
        seed,
        battery,
    );
    let model = NatureModel::train(&train_ds, kind)?;
    let mut compiled = model.compile();

    // Centroid stages below the cap. For tiny b the grid is empty and
    // the single stage sits at half the cap, so the API stays total.
    let stage_bytes: Vec<usize> = {
        let grid: Vec<usize> = ANYTIME_STAGE_GRID.iter().copied().filter(|&g| g < b).collect();
        if grid.is_empty() {
            vec![(b / 2).max(1)]
        } else {
            grid
        }
    };
    let stage_datasets: Vec<(u64, Dataset)> = stage_bytes
        .iter()
        .map(|&g| {
            let ds = crate::features::dataset_from_corpus_battery(
                &train,
                widths,
                crate::features::TrainingMethod::Prefix { b: g },
                mode.clone(),
                seed,
                battery,
            );
            (g as u64, ds)
        })
        .collect();
    let stage_refs: Vec<(u64, &Dataset)> = stage_datasets.iter().map(|(g, ds)| (*g, ds)).collect();
    let mut confidence = ConfidenceModel::fit(&stage_refs, ANYTIME_THRESHOLD_DISABLED);

    // One nature model per stage: probes predict with the model fitted
    // at their own prefix size (the full-`b` model is near chance on
    // small prefixes — partial entropy vectors drift too far).
    let stage_models: Vec<AnytimeStageModel> = stage_datasets
        .iter()
        .map(|(g, ds)| Ok(AnytimeStageModel { bytes: *g, model: NatureModel::train(ds, kind)? }))
        .collect::<Result<_, TrainError>>()?;
    let mut compiled_stages: Vec<(u64, CompiledNatureModel)> =
        stage_models.iter().map(|s| (s.bytes, s.model.compile())).collect();

    // Replay held-out files through the probe sequence once, recording
    // (bytes, label, score) per stage plus the fixed-b terminal.
    let mut fx =
        crate::features::FeatureExtractor::new(widths.clone(), mode.clone(), seed ^ 0x5EED)
            .with_battery(battery);
    struct Replay {
        truth: usize,
        probes: Vec<(u64, usize, f64)>,
        final_label: usize,
        final_bytes: u64,
    }
    let replays: Vec<Replay> = held
        .iter()
        .map(|file| {
            let cap = b.min(file.data.len()).max(1);
            // A probe whose feature width disagrees with its stage model
            // is skipped, matching the pipeline's behavior of silently
            // declining to exit early rather than panicking.
            let probes = compiled_stages
                .iter_mut()
                .filter(|(bytes, _)| (*bytes as usize) < cap)
                .filter_map(|(bytes, stage)| {
                    let x = fx.extract(&file.data[..*bytes as usize]);
                    let (label, margin) = stage.try_predict_with_margin(&x).ok()?;
                    let raw = confidence.raw_score(&x, *bytes, label.index(), margin);
                    Some((*bytes, label.index(), raw))
                })
                .collect();
            let x = fx.extract(&file.data[..cap]);
            let final_label = compiled.predict(&x).index();
            Replay { truth: file.class.index(), probes, final_label, final_bytes: cap as u64 }
        })
        .collect();

    let evaluate = |cm: &ConfidenceModel, threshold: f64| -> (f64, f64, f64) {
        let mut correct = 0usize;
        let mut bytes = 0.0f64;
        let mut early = 0usize;
        for r in &replays {
            // The patience rule the pipeline probe applies: a probe
            // fires only when its policy-filtered score clears the
            // threshold AND the previous probe predicted the same
            // label, so one unstable early prediction can never
            // classify a flow.
            let mut last: Option<usize> = None;
            let mut fired = None;
            for &(g, label, raw) in &r.probes {
                if last == Some(label) && cm.apply_policy(raw, g, label) >= threshold {
                    fired = Some((g, label));
                    break;
                }
                last = Some(label);
            }
            let (label, at) = match fired {
                Some((g, label)) => {
                    early += 1;
                    (label, g)
                }
                None => (r.final_label, r.final_bytes),
            };
            if label == r.truth {
                correct += 1;
            }
            bytes += at as f64;
        }
        let n = replays.len().max(1) as f64;
        (correct as f64 / n, bytes / n, early as f64 / n)
    };

    // The disabled sentinel never fires regardless of exit policy
    // (policy scores cap at 1.0), so the baseline is policy-free.
    let (full_accuracy, full_mean_bytes, _) = evaluate(&confidence, ANYTIME_THRESHOLD_DISABLED);

    // Joint calibration of the exit policy and threshold over the
    // held-out replays: per-class byte floors grouped into the
    // low-entropy natures (text, binary) and the high-entropy pair
    // (encrypted, compressed — mutually confusable on short prefixes),
    // plus the trusted-stage mark past which the stage model is as
    // accurate as the full-`b` model. Grouping the floors keeps the
    // search at two degrees of freedom so 160 held-out files cannot be
    // overfitted by per-class knobs.
    let floor_cands: Vec<u64> =
        std::iter::once(0u64).chain(stage_bytes.iter().map(|&g| g as u64)).collect();
    let trusted_cands: Vec<u64> = stage_bytes
        .iter()
        .map(|&g| g as u64)
        .filter(|&g| g >= 512)
        .chain(std::iter::once(u64::MAX))
        .collect();
    let n_classes = confidence.n_classes();
    let floors_for = |lo: u64, hi: u64| -> Vec<u64> {
        (0..n_classes)
            .map(|c| {
                if c == crate::FileClass::Encrypted.index()
                    || c == crate::FileClass::Compressed.index()
                {
                    hi
                } else {
                    lo
                }
            })
            .collect()
    };
    let mut best: Option<(f64, f64, Vec<u64>, u64)> = None; // (mean, threshold, floors, trusted)
    for &trusted in &trusted_cands {
        for &lo in &floor_cands {
            for &hi in floor_cands.iter().filter(|&&hi| hi >= lo) {
                confidence.set_exit_policy(floors_for(lo, hi), trusted);
                for &threshold in &ANYTIME_THRESHOLD_GRID {
                    let (accuracy, mean, _) = evaluate(&confidence, threshold);
                    if accuracy < full_accuracy - accuracy_floor {
                        continue;
                    }
                    if best.as_ref().is_none_or(|(m, ..)| mean < *m) {
                        best = Some((mean, threshold, floors_for(lo, hi), trusted));
                    }
                }
            }
        }
    }
    let chosen = match best {
        Some((_, threshold, floors, trusted)) => {
            confidence.set_exit_policy(floors, trusted);
            threshold
        }
        None => {
            confidence.set_exit_policy(Vec::new(), u64::MAX);
            ANYTIME_THRESHOLD_DISABLED
        }
    };
    let curve: Vec<AnytimeOperatingPoint> = ANYTIME_THRESHOLD_GRID
        .iter()
        .map(|&threshold| {
            let (accuracy, mean_bytes_to_verdict, early_fraction) =
                evaluate(&confidence, threshold);
            AnytimeOperatingPoint { threshold, accuracy, mean_bytes_to_verdict, early_fraction }
        })
        .collect();
    confidence.set_threshold(chosen);

    Ok(AnytimeTrainReport {
        model,
        anytime: AnytimeModel::new(confidence, stage_models),
        full_accuracy,
        full_mean_bytes,
        curve,
    })
}

impl Classifier for NatureModel {
    fn predict(&self, features: &[f64]) -> usize {
        NatureModel::predict(self, features).index()
    }

    fn n_classes(&self) -> usize {
        match self {
            NatureModel::Cart(m) => m.n_classes(),
            NatureModel::Svm(m) => m.n_classes(),
            NatureModel::SvmVote(m) => m.n_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_ml::svm::Kernel;

    fn band_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, FileClass::names());
        let mut v = 0.37f64;
        for _ in 0..n {
            v = (v * 887.3).fract();
            let jitter = (v - 0.5) * 0.1;
            v = (v * 653.9).fract();
            let x2 = v;
            ds.push(vec![0.50 + jitter, x2 * 0.3], FileClass::Text.index());
            ds.push(vec![0.75 + jitter, 0.3 + x2 * 0.3], FileClass::Binary.index());
            ds.push(vec![0.98 + jitter / 10.0, 0.6 + x2 * 0.3], FileClass::Encrypted.index());
            // Compressed shares the encrypted h1 band; the second
            // (battery-like) feature is what separates it.
            ds.push(vec![0.96 + jitter / 10.0, 1.0 + x2 * 0.3], FileClass::Compressed.index());
        }
        ds
    }

    #[test]
    fn cart_model_trains_and_predicts() {
        let ds = band_dataset(100);
        let m = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
        assert!(m.accuracy_on(&ds) > 0.95);
        assert_eq!(m.predict(&[0.5, 0.1]), FileClass::Text);
        assert_eq!(m.n_classes(), 4);
    }

    #[test]
    fn svm_model_trains_and_predicts() {
        let ds = band_dataset(60);
        let params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        let m = NatureModel::train(&ds, &ModelKind::Svm(params)).expect("train");
        assert!(m.accuracy_on(&ds) > 0.9, "acc={}", m.accuracy_on(&ds));
        assert_eq!(m.predict(&[0.98, 0.8]), FileClass::Encrypted);
        assert_eq!(m.predict(&[0.97, 1.1]), FileClass::Compressed);
    }

    #[test]
    fn train_rejects_empty_and_missing_class_datasets() {
        let empty = Dataset::new(2, FileClass::names());
        assert_eq!(
            NatureModel::train(&empty, &ModelKind::paper_cart()),
            Err(TrainError::EmptyDataset)
        );

        let mut partial = Dataset::new(2, FileClass::names());
        for i in 0..5 {
            let x = i as f64 / 10.0;
            partial.push(vec![0.5 + x, 0.1], FileClass::Text.index());
            partial.push(vec![0.7 + x, 0.2], FileClass::Binary.index());
            partial.push(vec![0.9 + x, 0.3], FileClass::Encrypted.index());
        }
        let err = NatureModel::train(&partial, &ModelKind::paper_svm());
        assert_eq!(
            err,
            Err(TrainError::MissingClass {
                index: FileClass::Compressed.index(),
                name: "compressed".to_string()
            })
        );
        let msg = err.expect_err("must fail").to_string();
        assert!(msg.contains("compressed"), "{msg}");
    }

    #[test]
    fn vote_model_matches_dag_on_clear_data() {
        let ds = band_dataset(60);
        let params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        let dag = NatureModel::train(&ds, &ModelKind::Svm(params)).expect("train");
        let vote = NatureModel::train(&ds, &ModelKind::SvmVote(params)).expect("train");
        let mut agree = 0;
        for (x, _) in ds.iter() {
            if dag.predict(x) == vote.predict(x) {
                agree += 1;
            }
        }
        assert!(agree as f64 / ds.len() as f64 > 0.95);
    }

    #[test]
    fn confusion_matrix_diagonal_dominates() {
        let ds = band_dataset(80);
        let m = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
        let cm = m.confusion_on(&ds);
        for c in 0..FileClass::ALL.len() {
            assert!(cm.class_accuracy(c) > 0.9, "class {c}");
        }
    }

    #[test]
    fn compiled_margins_match_plain_labels_for_every_kind() {
        let ds = band_dataset(60);
        let svm_params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        for kind in
            [ModelKind::paper_cart(), ModelKind::Svm(svm_params), ModelKind::SvmVote(svm_params)]
        {
            let boxed = NatureModel::train(&ds, &kind).expect("train");
            let mut compiled = boxed.compile();
            for (x, _) in ds.iter() {
                let (label, margin) = compiled.try_predict_with_margin(x).expect("width ok");
                assert_eq!(label, boxed.predict(x), "kind {kind:?}");
                assert!((0.0..=1.0).contains(&margin), "margin {margin} for {kind:?}");
            }
        }
    }

    #[test]
    fn anytime_training_calibrates_a_usable_threshold() {
        let corpus = iustitia_corpus::CorpusBuilder::new(33)
            .files_per_class(24)
            .size_range(1024, 4096)
            .build();
        let report = train_anytime_from_corpus(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            2048,
            crate::features::FeatureMode::Exact,
            &ModelKind::paper_cart(),
            33,
            true,
            0.02,
        )
        .expect("balanced corpus");
        assert_eq!(report.curve.len(), ANYTIME_THRESHOLD_GRID.len());
        assert!(report.full_accuracy > 0.5, "full acc {}", report.full_accuracy);
        for p in &report.curve {
            assert!((0.0..=1.0).contains(&p.accuracy));
            assert!(p.mean_bytes_to_verdict > 0.0);
            assert!(p.mean_bytes_to_verdict <= report.full_mean_bytes + 1e-9);
            assert!((0.0..=1.0).contains(&p.early_fraction));
        }
        // The chosen threshold honors the floor (or anytime is disabled).
        let t = report.anytime.confidence.threshold();
        if t < ANYTIME_THRESHOLD_DISABLED {
            let chosen = report
                .curve
                .iter()
                .find(|p| p.threshold == t)
                .expect("chosen threshold comes from the grid");
            assert!(chosen.accuracy >= report.full_accuracy - 0.02);
        }
        // Stage grid stays below the cap.
        assert!(report.anytime.confidence.stages().iter().all(|s| s.bytes < 2048));
        // Calibration is deterministic.
        let again = train_anytime_from_corpus(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            2048,
            crate::features::FeatureMode::Exact,
            &ModelKind::paper_cart(),
            33,
            true,
            0.02,
        )
        .expect("balanced corpus");
        assert_eq!(again.anytime, report.anytime);
        assert_eq!(again.model, report.model);
    }

    #[test]
    fn compiled_model_matches_boxed_for_every_kind() {
        let ds = band_dataset(60);
        let svm_params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        for kind in
            [ModelKind::paper_cart(), ModelKind::Svm(svm_params), ModelKind::SvmVote(svm_params)]
        {
            let boxed = NatureModel::train(&ds, &kind).expect("train");
            let mut compiled = boxed.compile();
            assert_eq!(compiled.n_features(), 2);
            for (x, _) in ds.iter() {
                assert_eq!(compiled.predict(x), boxed.predict(x), "kind {kind:?}");
            }
            assert!(compiled.try_predict(&[0.5]).is_err());
        }
    }
}
