//! The trained flow-nature model: CART or SVM (DAGSVM multi-class),
//! plus the offline training entry point of Figure 1's right half.

use iustitia_corpus::FileClass;
use iustitia_ml::cart::{CartParams, DecisionTree};
use iustitia_ml::compiled::{CompiledDag, CompiledTree, CompiledVote};
use iustitia_ml::multiclass::{DagSvm, OneVsOneVote};
use iustitia_ml::svm::SvmParams;
use iustitia_ml::{Classifier, Dataset, DimensionMismatch};

/// Which learning algorithm to train (the paper evaluates both).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelKind {
    /// CART decision tree.
    Cart(CartParams),
    /// SVM with DAGSVM multi-class evaluation (the paper's default).
    Svm(SvmParams),
    /// SVM with one-vs-one max-wins voting (ablation baseline).
    SvmVote(SvmParams),
}

impl ModelKind {
    /// The paper's CART configuration.
    pub fn paper_cart() -> Self {
        ModelKind::Cart(CartParams::default())
    }

    /// The paper's best model: SVM-RBF `γ=50, C=1000` via DAGSVM.
    pub fn paper_svm() -> Self {
        ModelKind::Svm(SvmParams::paper_rbf())
    }
}

/// A trained flow-nature classifier
/// (text / binary / encrypted / compressed).
///
/// # Examples
///
/// ```
/// use iustitia::model::{ModelKind, NatureModel};
/// use iustitia_corpus::FileClass;
/// use iustitia_ml::Dataset;
///
/// // Tiny hand-made dataset on two features (h1, chi): text low,
/// // binary mid; encrypted and compressed share the high-h1 band and
/// // are split by the second (randomness-battery) feature.
/// let mut ds = Dataset::new(2, FileClass::names());
/// for i in 0..20 {
///     let x = i as f64 / 100.0;
///     ds.push(vec![0.45 + x, 0.05], FileClass::Text.index());
///     ds.push(vec![0.70 + x, 0.05], FileClass::Binary.index());
///     ds.push(vec![0.97 + x / 10.0, 0.02 + x / 10.0], FileClass::Encrypted.index());
///     ds.push(vec![0.96 + x / 10.0, 0.60 + x], FileClass::Compressed.index());
/// }
/// let model = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("all classes present");
/// assert_eq!(model.predict(&[0.5, 0.05]), FileClass::Text);
/// assert_eq!(model.predict(&[0.99, 0.03]), FileClass::Encrypted);
/// assert_eq!(model.predict(&[0.99, 0.7]), FileClass::Compressed);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum NatureModel {
    /// A trained decision tree.
    Cart(DecisionTree),
    /// Trained pairwise SVMs evaluated as a decision DAG.
    Svm(DagSvm),
    /// Trained pairwise SVMs evaluated by max-wins voting.
    SvmVote(OneVsOneVote),
}

/// Why [`NatureModel::train`] could not produce a model.
///
/// The pairwise SVM fits (and per-class accuracy accounting) need at
/// least one sample of every class the dataset declares; a 4-class
/// retrain over a corpus that forgot one class used to panic deep in
/// the SMO solver — now it surfaces here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The dataset holds no samples at all.
    EmptyDataset,
    /// A declared class has no samples.
    MissingClass {
        /// Index of the absent class.
        index: usize,
        /// Its name from the dataset's class list.
        name: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::EmptyDataset => f.write_str("cannot train on an empty dataset"),
            TrainError::MissingClass { index, name } => {
                write!(f, "cannot train: class {index} ({name}) has no samples")
            }
        }
    }
}

impl std::error::Error for TrainError {}

impl NatureModel {
    /// Trains a model of the requested kind on an entropy-vector (or
    /// entropy + randomness-battery) dataset.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if the dataset is empty or is missing a
    /// class (the SVM needs samples of every pair).
    pub fn train(data: &Dataset, kind: &ModelKind) -> Result<Self, TrainError> {
        if data.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        if let Some(index) = data.class_counts().iter().position(|&c| c == 0) {
            let name = data.class_names()[index].clone();
            return Err(TrainError::MissingClass { index, name });
        }
        Ok(match kind {
            ModelKind::Cart(params) => NatureModel::Cart(DecisionTree::fit(data, params)),
            ModelKind::Svm(params) => NatureModel::Svm(DagSvm::fit(data, params)),
            ModelKind::SvmVote(params) => NatureModel::SvmVote(OneVsOneVote::fit(data, params)),
        })
    }

    /// Predicts the flow nature for one entropy vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality for the
    /// trained model.
    pub fn predict(&self, features: &[f64]) -> FileClass {
        let idx = match self {
            NatureModel::Cart(m) => m.predict(features),
            NatureModel::Svm(m) => m.predict(features),
            NatureModel::SvmVote(m) => m.predict(features),
        };
        FileClass::from_index(idx)
    }

    /// Accuracy over a labeled dataset.
    pub fn accuracy_on(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let ok = data.iter().filter(|(x, y)| self.predict(x).index() == *y).count();
        ok as f64 / data.len() as f64
    }

    /// Confusion matrix over a labeled dataset.
    pub fn confusion_on(&self, data: &Dataset) -> iustitia_ml::ConfusionMatrix {
        let mut cm = iustitia_ml::ConfusionMatrix::new(data.n_classes());
        for (x, y) in data.iter() {
            cm.record(y, self.predict(x).index());
        }
        cm
    }

    /// Feature-vector width the model was trained on (entropy widths
    /// alone, or widths + battery statistics).
    pub fn n_features(&self) -> usize {
        match self {
            NatureModel::Cart(m) => m.n_features(),
            NatureModel::Svm(m) => m.n_features(),
            NatureModel::SvmVote(m) => m.n_features(),
        }
    }

    /// Compiles the model into its flat, allocation-free inference form
    /// (see [`iustitia_ml::compiled`]). Predictions are bit-identical;
    /// the pipeline compiles every model it is handed at
    /// construction/load time and classifies through the compiled path.
    pub fn compile(&self) -> CompiledNatureModel {
        match self {
            NatureModel::Cart(m) => CompiledNatureModel::Cart(CompiledTree::compile(m)),
            NatureModel::Svm(m) => CompiledNatureModel::Svm(CompiledDag::compile(m)),
            NatureModel::SvmVote(m) => CompiledNatureModel::SvmVote(CompiledVote::compile(m)),
        }
    }
}

/// The compiled inference counterpart of [`NatureModel`]: flattened
/// tree nodes / packed shared support vectors, with owned scratch so
/// `predict` performs zero heap allocations (hence `&mut self` — the
/// scratch never changes results).
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledNatureModel {
    /// A compiled decision tree.
    Cart(CompiledTree),
    /// A compiled DAGSVM.
    Svm(CompiledDag),
    /// A compiled one-vs-one voter.
    SvmVote(CompiledVote),
}

impl CompiledNatureModel {
    /// Predicts the flow nature, or reports a feature-width mismatch.
    ///
    /// # Errors
    ///
    /// Returns [`DimensionMismatch`] when `features.len()` differs from
    /// the trained width.
    pub fn try_predict(&mut self, features: &[f64]) -> Result<FileClass, DimensionMismatch> {
        let idx = match self {
            CompiledNatureModel::Cart(m) => m.try_predict(features)?,
            CompiledNatureModel::Svm(m) => m.try_predict(features)?,
            CompiledNatureModel::SvmVote(m) => m.try_predict(features)?,
        };
        Ok(FileClass::from_index(idx))
    }

    /// Predicts the flow nature for one entropy vector.
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimensionality; use
    /// [`try_predict`](Self::try_predict) for a typed error.
    pub fn predict(&mut self, features: &[f64]) -> FileClass {
        match self.try_predict(features) {
            Ok(label) => label,
            Err(e) => panic!("feature dimensionality mismatch: {e}"),
        }
    }

    /// Feature-vector width the model expects.
    pub fn n_features(&self) -> usize {
        match self {
            CompiledNatureModel::Cart(m) => m.n_features(),
            CompiledNatureModel::Svm(m) => m.n_features(),
            CompiledNatureModel::SvmVote(m) => m.n_features(),
        }
    }
}

/// Trains a flow-nature model directly from a labeled file corpus:
/// extract entropy vectors under the chosen training regime, then fit.
///
/// This is the offline half of Figure 1 in one call.
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureMode, TrainingMethod};
/// use iustitia::model::{train_from_corpus, ModelKind};
/// use iustitia_corpus::{CorpusBuilder, FileClass};
/// use iustitia_entropy::FeatureWidths;
///
/// let corpus = CorpusBuilder::new(1).files_per_class(15).size_range(512, 2048).build();
/// let model = train_from_corpus(
///     &corpus,
///     &FeatureWidths::cart_selected(),
///     TrainingMethod::Prefix { b: 32 },
///     FeatureMode::Exact,
///     &ModelKind::paper_cart(),
///     1,
/// )
/// .expect("balanced corpus has every class");
/// // The model classifies 32-byte ciphertext prefixes as encrypted for
/// // most draws; sanity-check it at least answers with a valid class.
/// let label = model.predict(&[0.6, 0.5, 0.45, 0.4]);
/// assert!(FileClass::ALL.contains(&label));
/// ```
///
/// # Errors
///
/// Returns [`TrainError`] if the corpus is empty or omits a class.
pub fn train_from_corpus(
    files: &[iustitia_corpus::LabeledFile],
    widths: &iustitia_entropy::FeatureWidths,
    method: crate::features::TrainingMethod,
    mode: crate::features::FeatureMode,
    kind: &ModelKind,
    seed: u64,
) -> Result<NatureModel, TrainError> {
    let ds = crate::features::dataset_from_corpus(files, widths, method, mode, seed);
    NatureModel::train(&ds, kind)
}

/// Like [`train_from_corpus`], but appends the randomness-test battery
/// ([`iustitia_entropy::RandomnessBattery`]) features to every entropy
/// vector — the feature set that separates compressed from encrypted.
///
/// # Errors
///
/// Returns [`TrainError`] if the corpus is empty or omits a class.
pub fn train_from_corpus_battery(
    files: &[iustitia_corpus::LabeledFile],
    widths: &iustitia_entropy::FeatureWidths,
    method: crate::features::TrainingMethod,
    mode: crate::features::FeatureMode,
    kind: &ModelKind,
    seed: u64,
) -> Result<NatureModel, TrainError> {
    let ds = crate::features::dataset_from_corpus_battery(files, widths, method, mode, seed, true);
    NatureModel::train(&ds, kind)
}

impl Classifier for NatureModel {
    fn predict(&self, features: &[f64]) -> usize {
        NatureModel::predict(self, features).index()
    }

    fn n_classes(&self) -> usize {
        match self {
            NatureModel::Cart(m) => m.n_classes(),
            NatureModel::Svm(m) => m.n_classes(),
            NatureModel::SvmVote(m) => m.n_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_ml::svm::Kernel;

    fn band_dataset(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, FileClass::names());
        let mut v = 0.37f64;
        for _ in 0..n {
            v = (v * 887.3).fract();
            let jitter = (v - 0.5) * 0.1;
            v = (v * 653.9).fract();
            let x2 = v;
            ds.push(vec![0.50 + jitter, x2 * 0.3], FileClass::Text.index());
            ds.push(vec![0.75 + jitter, 0.3 + x2 * 0.3], FileClass::Binary.index());
            ds.push(vec![0.98 + jitter / 10.0, 0.6 + x2 * 0.3], FileClass::Encrypted.index());
            // Compressed shares the encrypted h1 band; the second
            // (battery-like) feature is what separates it.
            ds.push(vec![0.96 + jitter / 10.0, 1.0 + x2 * 0.3], FileClass::Compressed.index());
        }
        ds
    }

    #[test]
    fn cart_model_trains_and_predicts() {
        let ds = band_dataset(100);
        let m = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
        assert!(m.accuracy_on(&ds) > 0.95);
        assert_eq!(m.predict(&[0.5, 0.1]), FileClass::Text);
        assert_eq!(m.n_classes(), 4);
    }

    #[test]
    fn svm_model_trains_and_predicts() {
        let ds = band_dataset(60);
        let params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        let m = NatureModel::train(&ds, &ModelKind::Svm(params)).expect("train");
        assert!(m.accuracy_on(&ds) > 0.9, "acc={}", m.accuracy_on(&ds));
        assert_eq!(m.predict(&[0.98, 0.8]), FileClass::Encrypted);
        assert_eq!(m.predict(&[0.97, 1.1]), FileClass::Compressed);
    }

    #[test]
    fn train_rejects_empty_and_missing_class_datasets() {
        let empty = Dataset::new(2, FileClass::names());
        assert_eq!(
            NatureModel::train(&empty, &ModelKind::paper_cart()),
            Err(TrainError::EmptyDataset)
        );

        let mut partial = Dataset::new(2, FileClass::names());
        for i in 0..5 {
            let x = i as f64 / 10.0;
            partial.push(vec![0.5 + x, 0.1], FileClass::Text.index());
            partial.push(vec![0.7 + x, 0.2], FileClass::Binary.index());
            partial.push(vec![0.9 + x, 0.3], FileClass::Encrypted.index());
        }
        let err = NatureModel::train(&partial, &ModelKind::paper_svm());
        assert_eq!(
            err,
            Err(TrainError::MissingClass {
                index: FileClass::Compressed.index(),
                name: "compressed".to_string()
            })
        );
        let msg = err.expect_err("must fail").to_string();
        assert!(msg.contains("compressed"), "{msg}");
    }

    #[test]
    fn vote_model_matches_dag_on_clear_data() {
        let ds = band_dataset(60);
        let params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        let dag = NatureModel::train(&ds, &ModelKind::Svm(params)).expect("train");
        let vote = NatureModel::train(&ds, &ModelKind::SvmVote(params)).expect("train");
        let mut agree = 0;
        for (x, _) in ds.iter() {
            if dag.predict(x) == vote.predict(x) {
                agree += 1;
            }
        }
        assert!(agree as f64 / ds.len() as f64 > 0.95);
    }

    #[test]
    fn confusion_matrix_diagonal_dominates() {
        let ds = band_dataset(80);
        let m = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
        let cm = m.confusion_on(&ds);
        for c in 0..FileClass::ALL.len() {
            assert!(cm.class_accuracy(c) > 0.9, "class {c}");
        }
    }

    #[test]
    fn compiled_model_matches_boxed_for_every_kind() {
        let ds = band_dataset(60);
        let svm_params =
            SvmParams { c: 100.0, kernel: Kernel::Rbf { gamma: 20.0 }, ..Default::default() };
        for kind in
            [ModelKind::paper_cart(), ModelKind::Svm(svm_params), ModelKind::SvmVote(svm_params)]
        {
            let boxed = NatureModel::train(&ds, &kind).expect("train");
            let mut compiled = boxed.compile();
            assert_eq!(compiled.n_features(), 2);
            for (x, _) in ds.iter() {
                assert_eq!(compiled.predict(x), boxed.predict(x), "kind {kind:?}");
            }
            assert!(compiled.try_predict(&[0.5]).is_err());
        }
    }
}
