//! Trace-driven analysis: the time series and delay quantities behind
//! Figures 8 and 10 of the paper.
//!
//! §4.5 decomposes the classifier's buffering-stage delay as
//! `τ = τ_hash + τ_CDBsearch + τ_b`, where `τ_hash ≈ 18 µs` (SHA-1 over
//! the header), `τ_CDBsearch` is the flow-table lookup, and `τ_b` — the
//! dominant term — is the time for `c` data packets to fill the `b`-byte
//! buffer. [`run_over_trace`] drives a [`Iustitia`] pipeline over a
//! packet stream and samples, at a fixed tick, the CDB size, cumulative
//! totals, and windowed means of `c` and `τ`.

use iustitia_netsim::Packet;

use crate::pipeline::Iustitia;

/// Fixed components of the buffering-stage delay, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DelayComponents {
    /// Header hash time (paper: ≈ 18 µs for SHA-1).
    pub tau_hash: f64,
    /// CDB search time (paper: trivial next to `τ_b` once purged).
    pub tau_cdb_search: f64,
}

impl Default for DelayComponents {
    fn default() -> Self {
        DelayComponents { tau_hash: 18e-6, tau_cdb_search: 2e-6 }
    }
}

/// One sample of the per-tick time series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimePoint {
    /// Sample time (seconds from trace start).
    pub t: f64,
    /// Cumulative packets processed.
    pub total_packets: u64,
    /// Cumulative distinct flows seen (classified).
    pub total_flows: u64,
    /// Live CDB size at this tick.
    pub cdb_size: usize,
    /// Flows still buffering at this tick.
    pub pending_flows: usize,
    /// Mean packets-to-fill-buffer `c` over flows classified in this
    /// tick window (`None` if none were).
    pub mean_c: Option<f64>,
    /// Mean total delay `τ = τ_hash + τ_CDB + τ_b` over the same flows.
    pub mean_tau: Option<f64>,
}

/// Result of driving a pipeline over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRunReport {
    /// Per-tick samples.
    pub series: Vec<TimePoint>,
    /// All per-flow `c` values.
    pub all_c: Vec<u32>,
    /// All per-flow total delays `τ`.
    pub all_tau: Vec<f64>,
    /// Total packets processed.
    pub total_packets: u64,
    /// Total flows classified.
    pub total_flows: u64,
}

impl TraceRunReport {
    /// Mean of all per-flow `c`.
    pub fn mean_c(&self) -> f64 {
        if self.all_c.is_empty() {
            return 0.0;
        }
        self.all_c.iter().map(|&c| c as f64).sum::<f64>() / self.all_c.len() as f64
    }

    /// Mean of all per-flow `τ`.
    pub fn mean_tau(&self) -> f64 {
        if self.all_tau.is_empty() {
            return 0.0;
        }
        self.all_tau.iter().sum::<f64>() / self.all_tau.len() as f64
    }

    /// Fraction of flows whose delay is at most `threshold` seconds.
    pub fn tau_cdf_at(&self, threshold: f64) -> f64 {
        if self.all_tau.is_empty() {
            return 0.0;
        }
        let n = self.all_tau.iter().filter(|&&t| t <= threshold).count();
        n as f64 / self.all_tau.len() as f64
    }
}

/// Drives `pipeline` over a time-ordered packet stream, sampling the
/// series every `tick` seconds and flushing idle flows as time
/// advances.
///
/// # Panics
///
/// Panics if `tick` is not positive.
pub fn run_over_trace<I>(
    pipeline: &mut Iustitia,
    packets: I,
    tick: f64,
    delays: DelayComponents,
) -> TraceRunReport
where
    I: IntoIterator<Item = Packet>,
{
    assert!(tick > 0.0, "tick must be positive");
    let mut series = Vec::new();
    let mut all_c = Vec::new();
    let mut all_tau = Vec::new();
    let mut next_tick = tick;
    let mut total_packets = 0u64;
    let mut total_flows = 0u64;
    let mut window_c: Vec<f64> = Vec::new();
    let mut window_tau: Vec<f64> = Vec::new();

    let sample = |t: f64,
                  pipeline: &Iustitia,
                  total_packets: u64,
                  total_flows: u64,
                  window_c: &mut Vec<f64>,
                  window_tau: &mut Vec<f64>,
                  series: &mut Vec<TimePoint>| {
        let mean = |v: &[f64]| {
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        series.push(TimePoint {
            t,
            total_packets,
            total_flows,
            cdb_size: pipeline.cdb().len(),
            pending_flows: pipeline.pending_flows(),
            mean_c: mean(window_c),
            mean_tau: mean(window_tau),
        });
        window_c.clear();
        window_tau.clear();
    };

    for packet in packets {
        while packet.timestamp >= next_tick {
            pipeline.sweep_idle(next_tick);
            for f in pipeline.take_log() {
                let tau = delays.tau_hash + delays.tau_cdb_search + f.fill_time;
                window_c.push(f.packets as f64);
                window_tau.push(tau);
                all_c.push(f.packets);
                all_tau.push(tau);
                total_flows += 1;
            }
            sample(
                next_tick,
                pipeline,
                total_packets,
                total_flows,
                &mut window_c,
                &mut window_tau,
                &mut series,
            );
            next_tick += tick;
        }
        total_packets += 1;
        pipeline.process_packet(&packet);
        for f in pipeline.take_log() {
            let tau = delays.tau_hash + delays.tau_cdb_search + f.fill_time;
            window_c.push(f.packets as f64);
            window_tau.push(tau);
            all_c.push(f.packets);
            all_tau.push(tau);
            total_flows += 1;
        }
    }
    // Final partial tick.
    sample(
        next_tick,
        pipeline,
        total_packets,
        total_flows,
        &mut window_c,
        &mut window_tau,
        &mut series,
    );

    TraceRunReport { series, all_c, all_tau, total_packets, total_flows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, NatureModel};
    use crate::pipeline::PipelineConfig;
    use iustitia_corpus::FileClass;
    use iustitia_ml::Dataset;
    use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};

    fn toy_model() -> NatureModel {
        let mut ds = Dataset::new(4, FileClass::names());
        for i in 0..20 {
            let j = i as f64 / 200.0;
            ds.push(vec![0.45 + j, 0.3, 0.2, 0.15], 0);
            ds.push(vec![0.72 + j, 0.45, 0.35, 0.25], 1);
            ds.push(vec![0.98 + j / 20.0, 0.6, 0.45, 0.35], 2);
            ds.push(vec![0.95 + j / 20.0, 0.8, 0.7, 0.6], 3);
        }
        NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train")
    }

    #[test]
    fn report_series_and_totals() {
        let mut config = TraceConfig::small_test(11);
        config.content = ContentMode::SizesOnly;
        config.n_flows = 150;
        let packets = TraceGenerator::new(config);
        let mut pipeline = Iustitia::new(toy_model(), PipelineConfig::headline(1));
        let report = run_over_trace(&mut pipeline, packets, 1.0, DelayComponents::default());
        assert!(report.total_packets > 150);
        assert!(report.total_flows > 0);
        assert!(!report.series.is_empty());
        // Series is time-ordered with cumulative totals non-decreasing.
        for w in report.series.windows(2) {
            assert!(w[1].t > w[0].t);
            assert!(w[1].total_packets >= w[0].total_packets);
            assert!(w[1].total_flows >= w[0].total_flows);
        }
        assert_eq!(report.all_c.len(), report.total_flows as usize);
        assert!(report.mean_c() >= 1.0);
        assert!(report.mean_tau() > 0.0);
        assert!(report.tau_cdf_at(f64::INFINITY) > 0.999);
    }

    #[test]
    fn small_buffer_fills_in_one_packet_mostly() {
        // Paper: for b = 32, c ≈ 1 (50% of payloads < 140 B but ≥ 1 B...
        // strictly, most payloads ≥ 32 B).
        let mut config = TraceConfig::small_test(12);
        config.content = ContentMode::SizesOnly;
        config.n_flows = 200;
        let packets = TraceGenerator::new(config);
        let mut pipeline = Iustitia::new(toy_model(), PipelineConfig::headline(2));
        let report = run_over_trace(&mut pipeline, packets, 1.0, DelayComponents::default());
        assert!(report.mean_c() < 2.5, "mean c = {}", report.mean_c());
    }

    #[test]
    fn bigger_buffers_need_more_packets() {
        let mk_report = |b: usize| {
            let mut config = TraceConfig::small_test(13);
            config.content = ContentMode::SizesOnly;
            config.n_flows = 200;
            let packets = TraceGenerator::new(config);
            let pc = PipelineConfig { buffer_size: b, ..PipelineConfig::headline(3) };
            let mut pipeline = Iustitia::new(toy_model(), pc);
            run_over_trace(&mut pipeline, packets, 1.0, DelayComponents::default())
        };
        let small = mk_report(32);
        let big = mk_report(2000);
        assert!(big.mean_c() > small.mean_c(), "{} vs {}", big.mean_c(), small.mean_c());
        assert!(big.mean_tau() > small.mean_tau());
    }

    #[test]
    #[should_panic(expected = "tick must be positive")]
    fn zero_tick_panics() {
        let mut pipeline = Iustitia::new(toy_model(), PipelineConfig::headline(4));
        run_over_trace(&mut pipeline, Vec::new(), 0.0, DelayComponents::default());
    }
}
