//! Feature extraction: turning payload bytes into entropy vectors, and
//! building labeled datasets from a file corpus under the paper's three
//! training regimes (§4.2–4.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iustitia_corpus::LabeledFile;
use iustitia_entropy::{
    EntropyVector, EstimatorConfig, FeatureWidths, IncrementalEstimator, IncrementalVector,
    RandomnessBattery, StreamingEntropyEstimator, BATTERY_FEATURES,
};
use iustitia_ml::Dataset;

/// Bytes charged per resident counter in space accounting (the paper's
/// §4.4 cost model; also used by the bench binaries).
pub const BYTES_PER_COUNTER: usize = 32;

/// Fixed counter footprint of the randomness battery in §4.4-style
/// space accounting: the 256-bin byte histogram plus its 25 scalar
/// accumulators. Unlike the gram histograms this never grows with the
/// payload.
pub const BATTERY_COUNTERS: usize = 256 + 25;

/// How entropy features are computed from a buffer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FeatureMode {
    /// Exact per-gram counting (Formula 1).
    Exact,
    /// `(δ,ε)`-approximate streaming estimation for `k ≥ 2`, exact
    /// `h_1` (§4.4).
    Estimated(EstimatorConfig),
}

/// Extracts entropy-vector features from payload buffers.
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureExtractor, FeatureMode};
/// use iustitia_entropy::FeatureWidths;
///
/// let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
/// let features = fx.extract(b"GET /index.html HTTP/1.1 and some more text");
/// assert_eq!(features.len(), 4);
/// assert!(features.iter().all(|h| (0.0..=1.0).contains(h)));
/// ```
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    widths: FeatureWidths,
    mode: FeatureMode,
    estimator: Option<StreamingEntropyEstimator>,
    battery: bool,
}

impl FeatureExtractor {
    /// Creates an extractor. `seed` feeds the estimator's sampling RNG
    /// (unused in [`FeatureMode::Exact`]). The randomness battery is
    /// off; enable it with [`with_battery`](Self::with_battery).
    pub fn new(widths: FeatureWidths, mode: FeatureMode, seed: u64) -> Self {
        let estimator = match &mode {
            FeatureMode::Exact => None,
            FeatureMode::Estimated(cfg) => Some(StreamingEntropyEstimator::with_seed(*cfg, seed)),
        };
        FeatureExtractor { widths, mode, estimator, battery: false }
    }

    /// Enables or disables the randomness-test battery
    /// ([`RandomnessBattery`]). When enabled, every feature vector
    /// carries [`BATTERY_FEATURES`] extra values after the entropy
    /// vector — the statistics that separate compressed streams from
    /// ciphertext. The battery is always computed exactly, even in
    /// estimated entropy mode (its state is a fixed 256-bin histogram,
    /// so there is nothing to approximate).
    pub fn with_battery(mut self, battery: bool) -> Self {
        self.battery = battery;
        self
    }

    /// The feature widths this extractor produces.
    pub fn widths(&self) -> &FeatureWidths {
        &self.widths
    }

    /// The feature mode.
    pub fn mode(&self) -> &FeatureMode {
        &self.mode
    }

    /// Whether the randomness battery is enabled.
    pub fn battery(&self) -> bool {
        self.battery
    }

    /// Length of the feature vectors this extractor produces.
    pub fn n_features(&self) -> usize {
        self.widths.len() + if self.battery { BATTERY_FEATURES } else { 0 }
    }

    /// Computes the feature vector of `payload`.
    pub fn extract(&mut self, payload: &[u8]) -> Vec<f64> {
        let mut out = match &mut self.estimator {
            None => EntropyVector::compute(payload, &self.widths).into_values(),
            Some(est) => est.estimate_vector(payload, &self.widths),
        };
        if self.battery {
            // lint: allow(L009) — one-shot extraction at flow eviction, once per flow decision
            out.extend_from_slice(&iustitia_entropy::battery_features(payload));
        }
        out
    }

    /// Starts a per-flow feature session sized for `b_hint` payload
    /// bytes (the pipeline passes its configured buffer size `b`).
    ///
    /// Feeding a session the same bytes in any packetization and
    /// calling [`FlowFeatureState::finish`] is bit-identical to
    /// [`extract`](Self::extract) on the concatenated payload, provided
    /// `b_hint` equals the total length in estimated mode (exact mode
    /// ignores the hint entirely).
    pub fn begin_flow(&self, b_hint: usize) -> FlowFeatureState {
        let inner = match &self.estimator {
            None => FlowStateInner::Exact(IncrementalVector::with_byte_hint(&self.widths, b_hint)),
            Some(est) => FlowStateInner::Estimated(est.begin_incremental(&self.widths, b_hint)),
        };
        FlowFeatureState { inner, battery: self.battery.then(RandomnessBattery::new) }
    }

    /// Resets a previously finished flow session to the state
    /// [`begin_flow`](Self::begin_flow) would produce, reusing its
    /// histogram/sketch allocations — the pipeline's pool-recycling
    /// path, which makes steady-state packet processing allocation-free.
    ///
    /// A recycled session is bit-identical to a fresh one on the same
    /// payload (exact mode trivially; estimated mode re-derives the
    /// per-width sampling RNG from the extractor seed). If `state` was
    /// produced by an extractor in a different mode (or with a
    /// different battery setting) it is rebuilt from scratch instead.
    pub fn reset_flow(&self, state: &mut FlowFeatureState, b_hint: usize) {
        if self.battery != state.battery.is_some() {
            *state = self.begin_flow(b_hint);
            return;
        }
        if let Some(battery) = &mut state.battery {
            battery.reset();
        }
        match (&self.estimator, &mut state.inner) {
            (None, FlowStateInner::Exact(v)) => {
                v.reset();
                v.reserve_bytes(b_hint);
            }
            (Some(est), FlowStateInner::Estimated(session)) => {
                est.reset_incremental(session, b_hint);
            }
            _ => *state = self.begin_flow(b_hint),
        }
    }

    /// Counters used per flow: exact counting needs one counter per
    /// distinct gram (reported per-buffer), the sketch needs the fixed
    /// `g·z` budget (§4.4, Formula 3).
    pub fn counters_for_buffer(&self, payload: &[u8]) -> usize {
        let battery = if self.battery { BATTERY_COUNTERS } else { 0 };
        battery
            + match (&self.mode, &self.estimator) {
                (FeatureMode::Exact, _) => self
                    .widths
                    .iter()
                    .map(|k| {
                        iustitia_entropy::GramHistogram::from_bytes(payload, k).counters_used()
                    })
                    .sum(),
                (FeatureMode::Estimated(_), Some(est)) => {
                    // h1 is still counted exactly (256-counter dense table).
                    let h1 = if self.widths.iter().any(|k| k == 1) { 256 } else { 0 };
                    h1 + est.total_counters(&self.widths, payload.len())
                }
                (FeatureMode::Estimated(_), None) => {
                    unreachable!("estimator exists in Estimated mode")
                }
            }
    }
}

/// In-progress feature state of one pending flow, created by
/// [`FeatureExtractor::begin_flow`].
///
/// This replaces the historical "buffer the first `b` payload bytes,
/// then extract" flow state: chunks are folded in as packets arrive,
/// so a pending flow holds O(distinct grams) (exact mode) or the fixed
/// `g·z` sketch (estimated mode) instead of O(`b`) payload bytes.
#[derive(Debug, Clone)]
pub struct FlowFeatureState {
    inner: FlowStateInner,
    /// Present iff the owning extractor has the battery enabled; fed
    /// the same chunks as the entropy state and finished after it.
    battery: Option<RandomnessBattery>,
}

#[derive(Debug, Clone)]
enum FlowStateInner {
    Exact(IncrementalVector),
    Estimated(IncrementalEstimator),
}

impl FlowFeatureState {
    /// Folds one chunk of classification-window payload into the state.
    pub fn update(&mut self, chunk: &[u8]) {
        match &mut self.inner {
            FlowStateInner::Exact(v) => v.update(chunk),
            FlowStateInner::Estimated(e) => e.update(chunk),
        }
        if let Some(battery) = &mut self.battery {
            battery.update(chunk);
        }
    }

    /// The feature vector of everything fed so far: the entropy vector,
    /// then the battery features when the battery is enabled.
    pub fn finish(&self) -> Vec<f64> {
        let mut out = match &self.inner {
            FlowStateInner::Exact(v) => v.finish().into_values(),
            FlowStateInner::Estimated(e) => e.finish(),
        };
        if let Some(battery) = &self.battery {
            // lint: allow(L009) — owned-result convenience API; the pipeline uses finish_into
            out.extend_from_slice(&battery.finish());
        }
        out
    }

    /// Writes the feature vector into `out` (cleared first), using
    /// `counts_scratch` for exact-histogram count sorting, so a warm
    /// caller allocates nothing (exact mode; the estimated sketches
    /// still build their small per-finish median buffers). The battery
    /// features derive from fixed-size integer state and allocate
    /// nothing. Values are bit-identical to [`finish`](Self::finish).
    pub fn finish_into(&self, out: &mut Vec<f64>, counts_scratch: &mut Vec<u64>) {
        match &self.inner {
            FlowStateInner::Exact(v) => v.finish_entropies_into(out, counts_scratch),
            FlowStateInner::Estimated(e) => e.finish_into(out, counts_scratch),
        }
        if let Some(battery) = &self.battery {
            // lint: allow(L009) — reused scratch: capacity persists across flows after warm-up
            out.extend_from_slice(&battery.finish());
        }
    }

    /// As [`finish_into`](Self::finish_into), additionally threading
    /// `means_scratch` through the estimated sketches' per-finish
    /// median buffers, so even estimated-mode callers are
    /// allocation-free once warm — the anytime probe finishes a partial
    /// vector on every probed packet and must never allocate.
    /// Bit-identical to [`finish`](Self::finish).
    pub fn finish_into_with(
        &self,
        out: &mut Vec<f64>,
        counts_scratch: &mut Vec<u64>,
        means_scratch: &mut Vec<f64>,
    ) {
        match &self.inner {
            FlowStateInner::Exact(v) => v.finish_entropies_into(out, counts_scratch),
            FlowStateInner::Estimated(e) => e.finish_into_with(out, counts_scratch, means_scratch),
        }
        if let Some(battery) = &self.battery {
            // lint: allow(L009) — reused scratch: capacity persists across flows after warm-up
            out.extend_from_slice(&battery.finish());
        }
    }

    /// Total payload bytes fed so far.
    pub fn total_bytes(&self) -> u64 {
        match &self.inner {
            FlowStateInner::Exact(v) => v.total_bytes(),
            FlowStateInner::Estimated(e) => e.total_bytes(),
        }
    }

    /// Counters currently resident for this flow.
    pub fn counters_used(&self) -> usize {
        let battery = if self.battery.is_some() { BATTERY_COUNTERS } else { 0 };
        battery
            + match &self.inner {
                FlowStateInner::Exact(v) => v.counters_used(),
                FlowStateInner::Estimated(e) => e.counters_used(),
            }
    }

    /// Estimated heap footprint of this flow's feature state, at
    /// [`BYTES_PER_COUNTER`] per resident counter.
    pub fn resident_bytes(&self) -> usize {
        self.counters_used() * BYTES_PER_COUNTER
    }
}

/// The three ways of deriving training vectors from a corpus file
/// (§4.2–4.3).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrainingMethod {
    /// `H_F`: entropy vector of the *entire* file.
    WholeFile,
    /// `H_b`: entropy vector of the first `b` bytes.
    Prefix {
        /// Buffer size `b`.
        b: usize,
    },
    /// `H_b′`: `b` consecutive bytes starting at a random offset in
    /// `[0, T]` — models an unknown application header of length ≤ `T`.
    RandomOffsetPrefix {
        /// Buffer size `b`.
        b: usize,
        /// Maximum header length `T`.
        t_max: usize,
    },
}

/// Builds a labeled [`Dataset`] of entropy vectors from corpus files.
///
/// `seed` drives the random offsets of
/// [`TrainingMethod::RandomOffsetPrefix`] and the estimator sampling if
/// `mode` is estimated.
pub fn dataset_from_corpus(
    files: &[LabeledFile],
    widths: &FeatureWidths,
    method: TrainingMethod,
    mode: FeatureMode,
    seed: u64,
) -> Dataset {
    dataset_from_corpus_battery(files, widths, method, mode, seed, false)
}

/// Like [`dataset_from_corpus`], but optionally appending the
/// randomness-battery features to every row. With `battery = false`
/// this is exactly [`dataset_from_corpus`] (same RNG draws, same rows).
pub fn dataset_from_corpus_battery(
    files: &[LabeledFile],
    widths: &FeatureWidths,
    method: TrainingMethod,
    mode: FeatureMode,
    seed: u64,
    battery: bool,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fx = FeatureExtractor::new(widths.clone(), mode, seed ^ 0x0F1CE).with_battery(battery);
    let mut ds = Dataset::new(fx.n_features(), iustitia_corpus::FileClass::names());
    for file in files {
        let slice: &[u8] = match method {
            TrainingMethod::WholeFile => &file.data,
            TrainingMethod::Prefix { b } => &file.data[..b.min(file.data.len())],
            TrainingMethod::RandomOffsetPrefix { b, t_max } => {
                let max_start = t_max.min(file.data.len().saturating_sub(1));
                let start = if max_start == 0 { 0 } else { rng.gen_range(0..=max_start) };
                let end = (start + b).min(file.data.len());
                &file.data[start..end]
            }
        };
        ds.push(fx.extract(slice), file.class.index());
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_corpus::{CorpusBuilder, FileClass};

    fn small_corpus() -> Vec<LabeledFile> {
        CorpusBuilder::new(3).files_per_class(6).size_range(2048, 4096).build()
    }

    #[test]
    fn exact_extractor_matches_entropy_vector() {
        let widths = FeatureWidths::full();
        let mut fx = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let data = b"some sample payload with words and structure";
        let got = fx.extract(data);
        let want = iustitia_entropy::entropy_vector(data, widths.as_slice());
        assert_eq!(got, want);
    }

    #[test]
    fn estimated_extractor_within_tolerance() {
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::new(0.25, 0.25).expect("valid");
        let mut exact = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let mut est = FeatureExtractor::new(widths.clone(), FeatureMode::Estimated(cfg), 7);
        let data: Vec<u8> =
            (0..2048u32).map(|i| (i.wrapping_mul(2654435761) >> 18) as u8).collect();
        let e = exact.extract(&data);
        let a = est.extract(&data);
        // h1 is computed exactly in both modes, but HashMap iteration
        // order perturbs float summation at the last ulp.
        assert!((e[0] - a[0]).abs() < 1e-12, "h1 must be exact in both modes");
        for (x, y) in e.iter().zip(&a).skip(1) {
            assert!((x - y).abs() < 0.2, "exact={x} est={y}");
        }
    }

    #[test]
    fn estimated_mode_uses_fewer_counters_at_1k() {
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let exact = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let est = FeatureExtractor::new(widths.clone(), FeatureMode::Estimated(cfg), 0);
        let data: Vec<u8> = (0..1024u32).map(|i| (i.wrapping_mul(97)) as u8).collect();
        let c_exact = exact.counters_for_buffer(&data);
        let c_est = est.counters_for_buffer(&data);
        assert!(c_est < c_exact, "est={c_est} exact={c_exact}");
    }

    #[test]
    fn dataset_has_one_row_per_file() {
        let corpus = small_corpus();
        let ds = dataset_from_corpus(
            &corpus,
            &FeatureWidths::cart_selected(),
            TrainingMethod::WholeFile,
            FeatureMode::Exact,
            1,
        );
        assert_eq!(ds.len(), corpus.len());
        assert_eq!(ds.n_features(), 4);
        assert_eq!(ds.n_classes(), 4);
        assert_eq!(ds.class_counts(), vec![6, 6, 6, 6]);
    }

    #[test]
    fn battery_dataset_appends_battery_features() {
        let corpus = small_corpus();
        let widths = FeatureWidths::cart_selected();
        let plain = dataset_from_corpus(
            &corpus,
            &widths,
            TrainingMethod::Prefix { b: 256 },
            FeatureMode::Exact,
            1,
        );
        let with = dataset_from_corpus_battery(
            &corpus,
            &widths,
            TrainingMethod::Prefix { b: 256 },
            FeatureMode::Exact,
            1,
            true,
        );
        assert_eq!(with.n_features(), widths.len() + BATTERY_FEATURES);
        for (i, file) in corpus.iter().enumerate() {
            // The entropy prefix of each row is unchanged; the tail is
            // exactly the one-shot battery over the same slice.
            assert_eq!(&with.features(i)[..widths.len()], plain.features(i));
            let slice = &file.data[..256.min(file.data.len())];
            assert_eq!(
                &with.features(i)[widths.len()..],
                &iustitia_entropy::battery_features(slice)
            );
        }
    }

    #[test]
    fn battery_flow_session_matches_one_shot_extract() {
        let widths = FeatureWidths::svm_selected();
        let mut fx = FeatureExtractor::new(widths, FeatureMode::Exact, 0).with_battery(true);
        assert_eq!(fx.n_features(), 4 + BATTERY_FEATURES);
        let data: Vec<u8> = (0..777u32).map(|i| (i.wrapping_mul(193) >> 3) as u8).collect();
        let one_shot = fx.extract(&data);
        assert_eq!(one_shot.len(), fx.n_features());
        for chunk_len in [1usize, 4, 16, 777] {
            let mut session = fx.begin_flow(data.len());
            for chunk in data.chunks(chunk_len) {
                session.update(chunk);
            }
            assert_eq!(session.finish(), one_shot, "chunk_len={chunk_len}");
            let (mut out, mut scratch) = (Vec::new(), Vec::new());
            session.finish_into(&mut out, &mut scratch);
            assert_eq!(out, one_shot, "finish_into chunk_len={chunk_len}");
        }
    }

    #[test]
    fn reset_flow_rebuilds_on_battery_mismatch() {
        let widths = FeatureWidths::svm_selected();
        let plain = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let battery = FeatureExtractor::new(widths, FeatureMode::Exact, 0).with_battery(true);
        let mut state = plain.begin_flow(256);
        battery.reset_flow(&mut state, 256);
        state.update(b"abcabc");
        assert_eq!(state.finish().len(), battery.n_features());
        // And back: a battery state handed to a plain extractor is
        // rebuilt without the battery tail.
        plain.reset_flow(&mut state, 256);
        state.update(b"abcabc");
        assert_eq!(state.finish().len(), plain.n_features());
    }

    #[test]
    fn prefix_method_uses_only_first_b_bytes() {
        let corpus = small_corpus();
        let b = 64;
        let ds = dataset_from_corpus(
            &corpus,
            &FeatureWidths::new(vec![1]),
            TrainingMethod::Prefix { b },
            FeatureMode::Exact,
            1,
        );
        for (i, file) in corpus.iter().enumerate() {
            let expect = iustitia_entropy::entropy(&file.data[..b.min(file.data.len())], 1);
            assert_eq!(ds.features(i)[0], expect);
        }
    }

    #[test]
    fn random_offset_is_deterministic_per_seed() {
        let corpus = small_corpus();
        let method = TrainingMethod::RandomOffsetPrefix { b: 32, t_max: 512 };
        let a = dataset_from_corpus(
            &corpus,
            &FeatureWidths::new(vec![1, 2]),
            method,
            FeatureMode::Exact,
            5,
        );
        let b = dataset_from_corpus(
            &corpus,
            &FeatureWidths::new(vec![1, 2]),
            method,
            FeatureMode::Exact,
            5,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn zero_offset_random_prefix_equals_plain_prefix() {
        let corpus = small_corpus();
        let widths = FeatureWidths::new(vec![1, 2]);
        let a = dataset_from_corpus(
            &corpus,
            &widths,
            TrainingMethod::RandomOffsetPrefix { b: 48, t_max: 0 },
            FeatureMode::Exact,
            3,
        );
        let b = dataset_from_corpus(
            &corpus,
            &widths,
            TrainingMethod::Prefix { b: 48 },
            FeatureMode::Exact,
            3,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn extractor_accessors() {
        let fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
        assert_eq!(fx.widths().len(), 4);
        assert_eq!(*fx.mode(), FeatureMode::Exact);
    }

    #[test]
    fn empty_payload_extracts_zero_vector() {
        let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
        assert_eq!(fx.extract(b""), vec![0.0; 4]);
    }

    #[test]
    fn flow_session_matches_one_shot_extract_exact() {
        let widths = FeatureWidths::svm_selected();
        let mut fx = FeatureExtractor::new(widths, FeatureMode::Exact, 0);
        let data: Vec<u8> = (0..777u32).map(|i| (i.wrapping_mul(193) >> 3) as u8).collect();
        let one_shot = fx.extract(&data);
        for chunk_len in [1usize, 4, 16, 777] {
            let mut session = fx.begin_flow(data.len());
            for chunk in data.chunks(chunk_len) {
                session.update(chunk);
            }
            assert_eq!(session.finish(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn flow_session_matches_one_shot_extract_estimated() {
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let mut fx = FeatureExtractor::new(widths, FeatureMode::Estimated(cfg), 19);
        let data: Vec<u8> =
            (0..1024u32).map(|i| (i.wrapping_mul(2654435761) >> 11) as u8).collect();
        let one_shot = fx.extract(&data);
        for chunk_len in [1usize, 3, 64, 1024] {
            let mut session = fx.begin_flow(data.len());
            for chunk in data.chunks(chunk_len) {
                session.update(chunk);
            }
            assert_eq!(session.finish(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn interleaved_flows_match_independent_extractors() {
        // Regression test for estimator state bleed: one shared
        // extractor serving two interleaved flows must produce exactly
        // the results of two independent extractors with the same seed.
        let widths = FeatureWidths::svm_selected();
        let cfg = EstimatorConfig::svm_optimal();
        let flow_a: Vec<u8> = (0..512u32).map(|i| (i.wrapping_mul(101)) as u8).collect();
        let flow_b: Vec<u8> = (0..512u32).map(|i| (i.wrapping_mul(211) >> 2) as u8).collect();

        let shared = FeatureExtractor::new(widths.clone(), FeatureMode::Estimated(cfg), 77);
        let mut session_a = shared.begin_flow(flow_a.len());
        let mut session_b = shared.begin_flow(flow_b.len());
        for (ca, cb) in flow_a.chunks(32).zip(flow_b.chunks(48)) {
            session_a.update(ca);
            session_b.update(cb);
        }
        for ca in flow_a.chunks(32).skip(flow_b.len() / 48 + 1) {
            session_a.update(ca);
        }
        // Feed any remainder so both sessions saw their full payloads.
        let fed_a = session_a.total_bytes() as usize;
        session_a.update(&flow_a[fed_a..]);
        let fed_b = session_b.total_bytes() as usize;
        session_b.update(&flow_b[fed_b..]);

        let mut solo_a = FeatureExtractor::new(widths.clone(), FeatureMode::Estimated(cfg), 77);
        let mut solo_b = FeatureExtractor::new(widths, FeatureMode::Estimated(cfg), 77);
        assert_eq!(session_a.finish(), solo_a.extract(&flow_a));
        assert_eq!(session_b.finish(), solo_b.extract(&flow_b));
    }

    #[test]
    fn exact_session_resident_state_is_distinct_grams_not_payload() {
        let widths = FeatureWidths::svm_selected();
        let fx = FeatureExtractor::new(widths, FeatureMode::Exact, 0);
        let mut session = fx.begin_flow(4096);
        // Constant payload: one distinct gram per width, regardless of
        // how many bytes stream through.
        for _ in 0..64 {
            session.update(&[7u8; 64]);
        }
        assert_eq!(session.total_bytes(), 4096);
        assert_eq!(session.counters_used(), 4);
        assert_eq!(session.resident_bytes(), 4 * BYTES_PER_COUNTER);
    }

    #[test]
    fn recycled_flow_session_is_bit_identical_to_fresh() {
        let widths = FeatureWidths::svm_selected();
        let data: Vec<u8> = (0..900u32).map(|i| (i.wrapping_mul(157) >> 2) as u8).collect();
        let junk: Vec<u8> = (0..2048u32).map(|i| (i.wrapping_mul(31)) as u8).collect();
        for mode in [FeatureMode::Exact, FeatureMode::Estimated(EstimatorConfig::svm_optimal())] {
            for battery in [false, true] {
                let fx =
                    FeatureExtractor::new(widths.clone(), mode.clone(), 13).with_battery(battery);
                let mut fresh = fx.begin_flow(1024);
                for chunk in data.chunks(37) {
                    fresh.update(chunk);
                }
                let mut recycled = fx.begin_flow(1024);
                recycled.update(&junk);
                fx.reset_flow(&mut recycled, 1024);
                assert_eq!(recycled.total_bytes(), 0, "{mode:?}");
                for chunk in data.chunks(37) {
                    recycled.update(chunk);
                }
                assert_eq!(recycled.finish(), fresh.finish(), "{mode:?} battery={battery}");
            }
        }
    }

    #[test]
    fn reset_flow_rebuilds_on_mode_mismatch() {
        let widths = FeatureWidths::svm_selected();
        let exact = FeatureExtractor::new(widths.clone(), FeatureMode::Exact, 0);
        let est = FeatureExtractor::new(
            widths,
            FeatureMode::Estimated(EstimatorConfig::svm_optimal()),
            0,
        );
        let mut state = exact.begin_flow(256);
        est.reset_flow(&mut state, 256);
        // The state is now an estimated session with the sketch budget.
        assert_eq!(state.counters_used(), est.counters_for_buffer(&[0u8; 256]) - 256);
    }

    #[test]
    fn classes_remain_separable_from_prefixes() {
        // Hypothesis 2 consequence: even 64-byte prefixes should order
        // text < encrypted on h1 for most files.
        let corpus = CorpusBuilder::new(11).files_per_class(12).size_range(4096, 8192).build();
        let ds = dataset_from_corpus(
            &corpus,
            &FeatureWidths::new(vec![1]),
            TrainingMethod::Prefix { b: 64 },
            FeatureMode::Exact,
            2,
        );
        let mean = |class: FileClass| {
            let rows: Vec<f64> =
                ds.iter().filter(|(_, y)| *y == class.index()).map(|(x, _)| x[0]).collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        assert!(mean(FileClass::Text) < mean(FileClass::Encrypted));
    }
}
