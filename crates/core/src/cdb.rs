//! The Classification Database (CDB): flow IDs → nature labels, with
//! the purging policies of §4.5.
//!
//! Each record is 194 bits in the paper's accounting: a 160-bit SHA-1
//! flow hash, 32 bits for the last inter-arrival time `λ′`, and 2 bits
//! for the class label. Records are removed when
//!
//! 1. a FIN or RST packet closes the flow (≈ 46% of UMASS flows), or
//! 2. the flow is *obsolete*: `t_now − t_last > n·λ′`, where `λ′` is
//!    the inter-arrival of the flow's last two packets (default
//!    `λ = 0.5 s` when only one packet was seen) and `n` is a tunable
//!    coefficient (the paper finds `n = 4` optimal), or
//! 3. optionally, after a fixed age — the periodic-reclassification
//!    defense of §4.6.
//!
//! Obsolescence purges are triggered every `purge_trigger` insertions
//! (the paper uses 5,000), which keeps the CDB near the number of
//! genuinely concurrent flows (≈ 29,713 in Figure 8).

use std::collections::HashMap;
use std::fmt;

use iustitia_corpus::FileClass;
use iustitia_netsim::FiveTuple;

use crate::sha1::{sha1, Digest};

/// A 160-bit flow identifier: SHA-1 of the canonical 5-tuple bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct FlowId(pub Digest);

impl FlowId {
    /// Hashes a 5-tuple into its flow ID.
    pub fn of_tuple(tuple: &FiveTuple) -> FlowId {
        FlowId(sha1(&tuple.as_bytes()))
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// One CDB record (194 bits in the paper's layout).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CdbRecord {
    /// The flow's classified nature.
    pub label: FileClass,
    /// Timestamp of the flow's last packet.
    pub last_seen: f64,
    /// Inter-arrival time of the flow's last two packets (`λ′`), or
    /// `None` if only one packet has been seen since classification.
    pub last_iat: Option<f64>,
    /// When the flow was classified (drives the reclassification TTL).
    pub classified_at: f64,
}

/// CDB policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CdbConfig {
    /// Obsolescence coefficient `n` (paper optimum: 4). `None` disables
    /// inactivity purging entirely (the "w/o purging" curve of Fig. 8
    /// still removes FIN/RST flows).
    pub n: Option<f64>,
    /// Default `λ` when a flow's `λ′` is unknown (paper: 0.5 s).
    pub default_lambda: f64,
    /// Run an obsolescence sweep after this many insertions
    /// (paper: 5,000).
    pub purge_trigger: usize,
    /// Forget classifications older than this, forcing reclassification
    /// (the §4.6 defense). `None` disables.
    pub reclassify_after: Option<f64>,
}

impl Default for CdbConfig {
    /// The paper's deployment: `n = 4`, `λ = 0.5 s`, sweep every 5,000
    /// flows, no reclassification TTL.
    fn default() -> Self {
        CdbConfig { n: Some(4.0), default_lambda: 0.5, purge_trigger: 5000, reclassify_after: None }
    }
}

/// Counters describing CDB churn.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CdbStats {
    /// Records inserted.
    pub inserted: u64,
    /// Records removed by FIN/RST.
    pub removed_by_close: u64,
    /// Records removed by the `n·λ′` inactivity rule.
    pub removed_by_timeout: u64,
    /// Records expired by the reclassification TTL.
    pub removed_by_ttl: u64,
    /// Largest size ever reached.
    pub peak_size: usize,
}

/// The Classification Database of Figure 1.
///
/// # Examples
///
/// ```
/// use iustitia::cdb::{CdbConfig, ClassificationDatabase, FlowId};
/// use iustitia_corpus::FileClass;
///
/// let mut cdb = ClassificationDatabase::new(CdbConfig::default());
/// let id = FlowId([7u8; 20]);
/// cdb.insert(id, FileClass::Encrypted, 0.0);
/// assert_eq!(cdb.lookup(&id, 0.1), Some(FileClass::Encrypted));
/// cdb.remove_on_close(&id);
/// assert_eq!(cdb.lookup(&id, 0.2), None);
/// ```
#[derive(Debug, Clone)]
pub struct ClassificationDatabase {
    config: CdbConfig,
    records: HashMap<FlowId, CdbRecord>,
    inserts_since_sweep: usize,
    stats: CdbStats,
}

impl ClassificationDatabase {
    /// Creates an empty CDB.
    pub fn new(config: CdbConfig) -> Self {
        ClassificationDatabase {
            config,
            records: HashMap::new(),
            inserts_since_sweep: 0,
            stats: CdbStats::default(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CdbConfig {
        &self.config
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the CDB is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size in bits under the paper's 194-bit record layout.
    pub fn size_bits(&self) -> u64 {
        self.records.len() as u64 * 194
    }

    /// Churn counters.
    pub fn stats(&self) -> &CdbStats {
        &self.stats
    }

    /// Looks up a flow's label and refreshes its timing (`λ′`,
    /// `last_seen`). Returns `None` for unknown flows and for records
    /// expired by the reclassification TTL (which are removed).
    pub fn lookup(&mut self, id: &FlowId, now: f64) -> Option<FileClass> {
        if let Some(ttl) = self.config.reclassify_after {
            if let Some(rec) = self.records.get(id) {
                if now - rec.classified_at > ttl {
                    // lint: allow(L008) — HashMap::remove never panics (the KB is conservative for Vec::remove)
                    self.records.remove(id);
                    self.stats.removed_by_ttl += 1;
                    return None;
                }
            }
        }
        let rec = self.records.get_mut(id)?;
        let iat = (now - rec.last_seen).max(0.0);
        rec.last_iat = Some(iat);
        rec.last_seen = now;
        Some(rec.label)
    }

    /// Mutable access to a live record without the TTL bookkeeping of
    /// [`lookup`](Self::lookup) — the batch hit-run fast path, which
    /// refreshes one record across consecutive same-flow packets after
    /// an initial `lookup` resolved it. Callers must re-check
    /// `reclassify_after` themselves per packet and fall back to
    /// `lookup` (which removes and counts the expiry) when it trips.
    pub(crate) fn record_mut(&mut self, id: &FlowId) -> Option<&mut CdbRecord> {
        self.records.get_mut(id)
    }

    /// Inserts a freshly classified flow and runs the periodic
    /// obsolescence sweep when due. Returns how many records the sweep
    /// removed (0 when no sweep ran).
    pub fn insert(&mut self, id: FlowId, label: FileClass, now: f64) -> usize {
        self.records
            .insert(id, CdbRecord { label, last_seen: now, last_iat: None, classified_at: now });
        self.stats.inserted += 1;
        self.stats.peak_size = self.stats.peak_size.max(self.records.len());
        self.inserts_since_sweep += 1;
        if self.inserts_since_sweep >= self.config.purge_trigger {
            self.inserts_since_sweep = 0;
            self.purge_obsolete(now)
        } else {
            0
        }
    }

    /// Removes the record for a flow that sent FIN or RST. Returns
    /// whether a record existed.
    pub fn remove_on_close(&mut self, id: &FlowId) -> bool {
        // lint: allow(L008) — HashMap::remove never panics (the KB is conservative for Vec::remove)
        let existed = self.records.remove(id).is_some();
        if existed {
            self.stats.removed_by_close += 1;
        }
        existed
    }

    /// Removes every obsolete flow: `now − last_seen > n·λ′` (with the
    /// default `λ` for single-packet flows). Returns the number removed.
    /// No-op when `config.n` is `None`.
    pub fn purge_obsolete(&mut self, now: f64) -> usize {
        let Some(n) = self.config.n else {
            return 0;
        };
        let default_lambda = self.config.default_lambda;
        let before = self.records.len();
        self.records.retain(|_, rec| {
            let lambda = rec.last_iat.unwrap_or(default_lambda);
            now - rec.last_seen <= n * lambda.max(1e-6)
        });
        let removed = before - self.records.len();
        self.stats.removed_by_timeout += removed as u64;
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(byte: u8) -> FlowId {
        FlowId([byte; 20])
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Text, 1.0);
        assert_eq!(cdb.lookup(&id(1), 1.5), Some(FileClass::Text));
        assert_eq!(cdb.lookup(&id(2), 1.5), None);
        assert_eq!(cdb.len(), 1);
        assert_eq!(cdb.size_bits(), 194);
    }

    #[test]
    fn lookup_updates_lambda_prime() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Binary, 0.0);
        cdb.lookup(&id(1), 0.25);
        cdb.lookup(&id(1), 0.35);
        // λ′ = 0.1 now; obsolete when idle > n·λ′ = 0.4
        assert_eq!(cdb.purge_obsolete(0.70), 0);
        assert_eq!(cdb.purge_obsolete(0.80), 1);
        assert!(cdb.is_empty());
        assert_eq!(cdb.stats().removed_by_timeout, 1);
    }

    #[test]
    fn single_packet_flows_use_default_lambda() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Text, 0.0);
        // default λ = 0.5, n = 4 → obsolete after 2 s idle
        assert_eq!(cdb.purge_obsolete(1.9), 0);
        assert_eq!(cdb.purge_obsolete(2.1), 1);
    }

    #[test]
    fn close_removal_counts() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Text, 0.0);
        assert!(cdb.remove_on_close(&id(1)));
        assert!(!cdb.remove_on_close(&id(1)));
        assert_eq!(cdb.stats().removed_by_close, 1);
    }

    #[test]
    fn purge_disabled_keeps_records() {
        let mut cdb = ClassificationDatabase::new(CdbConfig { n: None, ..CdbConfig::default() });
        cdb.insert(id(1), FileClass::Text, 0.0);
        assert_eq!(cdb.purge_obsolete(1e9), 0);
        assert_eq!(cdb.len(), 1);
    }

    #[test]
    fn sweep_triggers_every_n_inserts() {
        let config = CdbConfig { purge_trigger: 10, ..CdbConfig::default() };
        let mut cdb = ClassificationDatabase::new(config);
        // Insert 9 stale flows at t=0; the 10th insert at t=100 sweeps.
        for b in 0..9u8 {
            cdb.insert(id(b), FileClass::Text, 0.0);
        }
        assert_eq!(cdb.len(), 9);
        let removed = cdb.insert(id(9), FileClass::Text, 100.0);
        assert_eq!(removed, 9);
        assert_eq!(cdb.len(), 1);
    }

    #[test]
    fn reclassification_ttl_expires_records() {
        let config = CdbConfig { reclassify_after: Some(5.0), ..CdbConfig::default() };
        let mut cdb = ClassificationDatabase::new(config);
        cdb.insert(id(1), FileClass::Encrypted, 0.0);
        assert_eq!(cdb.lookup(&id(1), 4.0), Some(FileClass::Encrypted));
        assert_eq!(cdb.lookup(&id(1), 6.0), None, "TTL expired → reclassify");
        assert_eq!(cdb.stats().removed_by_ttl, 1);
    }

    #[test]
    fn flow_id_of_tuple_is_stable_and_distinct() {
        use std::net::Ipv4Addr;
        let a = FiveTuple::tcp(Ipv4Addr::new(1, 2, 3, 4), 10, Ipv4Addr::new(5, 6, 7, 8), 80);
        let b = FiveTuple::tcp(Ipv4Addr::new(1, 2, 3, 4), 11, Ipv4Addr::new(5, 6, 7, 8), 80);
        assert_eq!(FlowId::of_tuple(&a), FlowId::of_tuple(&a));
        assert_ne!(FlowId::of_tuple(&a), FlowId::of_tuple(&b));
        assert_eq!(FlowId::of_tuple(&a).to_string().len(), 40);
    }

    fn id64(n: u64) -> FlowId {
        let mut bytes = [0u8; 20];
        bytes[..8].copy_from_slice(&n.to_be_bytes());
        FlowId(bytes)
    }

    #[test]
    fn sweep_fires_at_exactly_the_default_trigger() {
        // Default trigger is the paper's 5,000 insertions: 4,999 stale
        // inserts must not sweep, the 5,000th must.
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        assert_eq!(cdb.config().purge_trigger, 5000);
        for n in 0..4999u64 {
            assert_eq!(cdb.insert(id64(n), FileClass::Binary, 0.0), 0, "insert #{n} swept early");
        }
        assert_eq!(cdb.len(), 4999, "nothing purged below the trigger");
        // t=100: every earlier record is long obsolete (default 2 s
        // idle allowance); the trigger insert itself survives.
        let removed = cdb.insert(id64(4999), FileClass::Binary, 100.0);
        assert_eq!(removed, 4999);
        assert_eq!(cdb.len(), 1);
        assert_eq!(cdb.stats().removed_by_timeout, 4999);
        // The counter reset: the next 4,999 inserts don't sweep either.
        for n in 5000..9999u64 {
            assert_eq!(cdb.insert(id64(n), FileClass::Binary, 100.0), 0);
        }
        assert!(cdb.insert(id64(9999), FileClass::Binary, 300.0) > 0, "second sweep fires");
    }

    #[test]
    fn remove_on_close_of_unknown_flow_is_a_noop() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Text, 0.0);
        assert!(!cdb.remove_on_close(&id(2)), "never-seen flow");
        assert_eq!(cdb.stats().removed_by_close, 0, "no-op must not count");
        assert_eq!(cdb.len(), 1, "unrelated records untouched");
        assert_eq!(cdb.lookup(&id(1), 0.1), Some(FileClass::Text));
    }

    #[test]
    fn lookup_after_purge_misses_the_evicted_record() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        cdb.insert(id(1), FileClass::Encrypted, 0.0);
        cdb.insert(id(2), FileClass::Text, 9.0);
        // Single-packet flows: obsolete after n·λ = 2 s idle. At t=10
        // flow 1 (idle 10 s) is evicted, flow 2 (idle 1 s) survives.
        assert_eq!(cdb.purge_obsolete(10.0), 1);
        assert_eq!(cdb.lookup(&id(1), 10.0), None, "evicted record must miss");
        assert_eq!(cdb.lookup(&id(2), 10.0), Some(FileClass::Text));
        // The miss neither resurrects the record nor perturbs counters.
        assert_eq!(cdb.len(), 1);
        assert_eq!(cdb.stats().removed_by_timeout, 1);
        assert_eq!(cdb.stats().removed_by_ttl, 0);
    }

    #[test]
    fn peak_size_tracked() {
        let mut cdb = ClassificationDatabase::new(CdbConfig::default());
        for b in 0..5u8 {
            cdb.insert(id(b), FileClass::Binary, 0.0);
        }
        cdb.remove_on_close(&id(0));
        assert_eq!(cdb.stats().peak_size, 5);
        assert_eq!(cdb.len(), 4);
    }
}
