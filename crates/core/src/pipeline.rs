//! The online classification pipeline of Figure 1.
//!
//! Per packet: hash the header into a flow ID, look the flow up in the
//! [CDB](crate::cdb); on a hit, forward to the flow's output queue.
//! Otherwise fold the payload into the flow's *incremental feature
//! state*; once `b` classification-window bytes have streamed through —
//! or the flow goes idle — finish the entropy vector, classify, store
//! the label in the CDB, and drain the flow to the right queue. FIN/RST
//! packets remove CDB records.
//!
//! Pending flows do **not** hold their payload: a flow buffers raw
//! bytes only while the [`HeaderPolicy`] skip/strip decision is still
//! unresolved (bounded by the buffer capacity, and only under
//! [`HeaderPolicy::StripKnown`]). Once resolved, per-flow heap is the
//! feature state alone — O(distinct grams) in exact mode, the fixed
//! `g·z` sketch in estimated mode — independent of `b`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iustitia_corpus::{scan_application_header, strip_application_header, FileClass, HeaderScan};
use iustitia_netsim::Packet;

use crate::cdb::{CdbConfig, ClassificationDatabase, FlowId};
use crate::features::{FeatureExtractor, FeatureMode, FlowFeatureState};
use crate::model::{AnytimeModel, CompiledNatureModel, NatureModel};
use iustitia_entropy::FeatureWidths;
use iustitia_ml::ConfidenceModel;

/// How application-layer headers are handled before classification
/// (§4.3 and the §4.6 padding defense).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HeaderPolicy {
    /// Classify from the first payload byte (header-free deployments:
    /// FTP-data, most P2P transfer flows).
    None,
    /// Strip recognized HTTP/SMTP/POP3/IMAP headers by signature; for
    /// unrecognized flows fall back to skipping `t` bytes (the paper's
    /// threshold `T` policy for unknown headers).
    StripKnown {
        /// Fallback threshold `T` for unknown applications.
        t: usize,
    },
    /// Always treat byte `t + 1` as the start of the flow.
    SkipThreshold {
        /// Threshold `T`.
        t: usize,
    },
    /// Defense: skip a *random* number of bytes in `[0, t_max]` so an
    /// attacker cannot know which bytes will be classified.
    RandomSkip {
        /// Maximum skip `T`.
        t_max: usize,
    },
}

impl HeaderPolicy {
    /// Extra bytes that must be buffered beyond `b` to cover the
    /// largest possible header/skip.
    pub fn allowance(&self) -> usize {
        match *self {
            HeaderPolicy::None => 0,
            HeaderPolicy::StripKnown { t } => t,
            HeaderPolicy::SkipThreshold { t } => t,
            HeaderPolicy::RandomSkip { t_max } => t_max,
        }
    }
}

/// Anytime early-exit policy: when present (and an
/// [`AnytimeModel`] is attached via
/// [`Iustitia::with_anytime`]), the pipeline probes each buffering
/// flow's partial feature vector after qualifying packets and emits a
/// verdict as soon as the confidence score clears `threshold` —
/// instead of always waiting for `b` bytes. The `fed >= b` rule stays
/// as the fallback cap, so flows that never look confident classify
/// exactly as before.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnytimeConfig {
    /// Emission threshold on the combined confidence score (scores are
    /// clamped to `[0, 1]`, so
    /// [`ANYTIME_THRESHOLD_DISABLED`](crate::model::ANYTIME_THRESHOLD_DISABLED)
    /// keeps probes running but never firing).
    pub threshold: f64,
    /// Do not probe before this many classification-window bytes have
    /// been fed (below the first centroid stage the score would be an
    /// extrapolation).
    pub min_bytes: usize,
    /// Minimum newly fed bytes between consecutive probes of one flow,
    /// bounding probe cost on flows of tiny packets.
    pub probe_stride: usize,
}

impl AnytimeConfig {
    /// An operating point taken from a calibrated model: its threshold,
    /// probing from the first fitted centroid stage, with a default
    /// 64-byte stride (each probe re-finishes the feature vector, so
    /// the stride is the knob trading verdict latency for probe cost).
    pub fn calibrated(confidence: &ConfidenceModel) -> Self {
        AnytimeConfig {
            threshold: confidence.threshold(),
            min_bytes: confidence.min_stage_bytes() as usize,
            probe_stride: 64,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Classification buffer size `b` in bytes (paper: 32 for
    /// header-free flows, 1024+ with header handling).
    pub buffer_size: usize,
    /// Entropy-vector feature widths (must match the trained model).
    pub widths: FeatureWidths,
    /// Exact or `(δ,ε)`-estimated features.
    pub mode: FeatureMode,
    /// Header handling.
    pub header_policy: HeaderPolicy,
    /// CDB policy.
    pub cdb: CdbConfig,
    /// Classify a partially filled buffer after this much idle time
    /// (the paper classifies "when the buffer of a flow is full" or
    /// "stops receiving packets for a certain period").
    pub idle_timeout: f64,
    /// RNG seed (random skip offsets, estimator sampling).
    pub seed: u64,
    /// Append the randomness-test battery to every feature vector (the
    /// compressed-vs-encrypted discriminator; must match the trained
    /// model's feature set).
    pub battery: bool,
    /// Anytime early-exit policy; `None` (the default) reproduces the
    /// fixed-`b` pipeline bit for bit — no probes run at all.
    pub anytime: Option<AnytimeConfig>,
}

impl PipelineConfig {
    /// The paper's headline operating point: `b = 32`, exact entropy
    /// vectors over `φ′_SVM`, no header handling, no battery (the
    /// paper's 3-class feature set).
    pub fn headline(seed: u64) -> Self {
        PipelineConfig {
            buffer_size: 32,
            widths: FeatureWidths::svm_selected(),
            mode: FeatureMode::Exact,
            header_policy: HeaderPolicy::None,
            cdb: CdbConfig::default(),
            idle_timeout: 5.0,
            seed,
            battery: false,
            anytime: None,
        }
    }
}

/// One packet of a batch, paired with its precomputed flow ID.
///
/// The serve layer hashes the 5-tuple on its reader threads, so the
/// shard-side batch path should not redo the SHA-1 per packet;
/// [`FlowId::of_tuple`] is deterministic, so precomputing the ID
/// changes no verdict.
#[derive(Debug, Clone, Copy)]
pub struct BatchPacket<'a> {
    /// SHA-1 flow ID of `packet.tuple`.
    pub flow: FlowId,
    /// The packet itself.
    pub packet: &'a Packet,
}

impl<'a> BatchPacket<'a> {
    /// Pairs a packet with its computed flow ID.
    pub fn new(packet: &'a Packet) -> Self {
        BatchPacket { flow: FlowId::of_tuple(&packet.tuple), packet }
    }
}

/// What the pipeline did with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// CDB hit — forwarded straight to the labeled queue.
    Hit(FileClass),
    /// Unknown flow, payload buffered, classification pending.
    Buffering,
    /// This packet completed the buffer; the flow was classified now.
    Classified(FileClass),
    /// Control packet (no payload) or close signal — passed through.
    Ignored,
}

/// A completed per-flow classification, with the delay-analysis
/// quantities of §4.5 (`c` packets to fill the buffer, `τ_b` fill
/// time).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassifiedFlow {
    /// Flow ID.
    pub id: FlowId,
    /// Assigned label.
    pub label: FileClass,
    /// Number of data packets needed to fill the buffer (`c`).
    pub packets: u32,
    /// Buffer fill time `τ_b` (first data packet → classification).
    pub fill_time: f64,
    /// Bytes that were in the buffer when classified.
    pub buffered_bytes: usize,
    /// Whether an anytime probe emitted this verdict before the
    /// fixed-`b` buffer filled.
    pub early_exit: bool,
}

/// Where a pending flow is in its lifecycle.
// The Streaming variant inlines the whole feature state (histograms +
// battery accumulators) on purpose: states cycle through the flow pool
// by value, and an indirection here would put an allocation back on
// the recycled-flow path the pool exists to keep allocation-free.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum FlowStage {
    /// Raw prefix retained verbatim until the header skip/strip
    /// decision resolves (only [`HeaderPolicy::StripKnown`] flows pass
    /// through this stage; it is bounded by the buffer capacity).
    Staging(Vec<u8>),
    /// Header decision resolved: payload streams straight into the
    /// incremental feature state, nothing is retained.
    Streaming {
        /// Per-flow incremental feature session.
        features: FlowFeatureState,
        /// Classification-window bytes fed so far (`≤ b`).
        fed: usize,
        /// Header/skip bytes still to discard before feeding.
        skip_remaining: usize,
        /// `fed` as of the last anytime probe (0 before any probe);
        /// gates the probe stride. Stays 0 when anytime is off.
        probed: usize,
        /// Label the previous anytime probe predicted, if any: the
        /// patience rule only emits a verdict when two consecutive
        /// probes agree. Stays `None` when anytime is off.
        last_probe: Option<FileClass>,
    },
}

#[derive(Debug)]
struct FlowBuffer {
    stage: FlowStage,
    first_ts: f64,
    last_ts: f64,
    packets: u32,
    /// Payload bytes observed for this flow, saturating at the buffer
    /// capacity (the old `data.len()`; still reported as
    /// `buffered_bytes` for the §4.5 delay analysis).
    seen: usize,
}

impl FlowBuffer {
    /// Estimated heap resident for this flow: staged raw bytes, or the
    /// feature state's counter footprint once streaming.
    fn resident_bytes(&self) -> usize {
        match &self.stage {
            FlowStage::Staging(staged) => staged.len(),
            FlowStage::Streaming { features, .. } => features.resident_bytes(),
        }
    }
}

/// Throughput counters for the per-class output queues plus
/// pass-through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QueueCounters {
    /// Data packets forwarded per class queue
    /// `[text, binary, encrypted, compressed]`.
    pub forwarded: [u64; 4],
    /// Data packets held in flow buffers awaiting classification.
    pub buffered: u64,
    /// Control/close packets passed through unclassified.
    pub passed_through: u64,
}

/// The Iustitia online classifier (Figure 1's left half).
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureMode, TrainingMethod};
/// use iustitia::model::{train_from_corpus, ModelKind};
/// use iustitia::pipeline::{Iustitia, PipelineConfig, Verdict};
/// use iustitia_corpus::CorpusBuilder;
/// use iustitia_entropy::FeatureWidths;
/// use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
/// use std::net::Ipv4Addr;
///
/// // Offline: train on 32-byte prefixes of a labeled corpus.
/// let corpus = CorpusBuilder::new(1).files_per_class(20).size_range(512, 2048).build();
/// let model = train_from_corpus(
///     &corpus,
///     &FeatureWidths::svm_selected(),
///     TrainingMethod::Prefix { b: 32 },
///     FeatureMode::Exact,
///     &ModelKind::paper_cart(),
///     1,
/// )
/// .expect("balanced corpus");
/// let mut iustitia = Iustitia::new(model, PipelineConfig::headline(1));
///
/// // Online: the first data packet already carries ≥ 32 bytes.
/// let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 9999, Ipv4Addr::new(10, 0, 0, 2), 443);
/// let packet = Packet {
///     timestamp: 0.0,
///     tuple,
///     flags: TcpFlags::ACK,
///     payload: b"the cat sat on the mat and then sat again onward".to_vec(),
/// };
/// assert!(matches!(iustitia.process_packet(&packet), Verdict::Classified(_)));
/// ```
#[derive(Debug)]
pub struct Iustitia {
    config: PipelineConfig,
    model: NatureModel,
    /// The model's compiled inference form (flattened tree / packed
    /// shared support vectors); every verdict comes from this path.
    compiled: CompiledNatureModel,
    cdb: ClassificationDatabase,
    buffers: HashMap<FlowId, FlowBuffer>,
    extractor: FeatureExtractor,
    rng: StdRng,
    queues: QueueCounters,
    log: Vec<ClassifiedFlow>,
    /// Running sum of every pending flow's [`FlowBuffer::resident_bytes`].
    resident: usize,
    /// Timestamp of the last opportunistic idle sweep.
    last_sweep: f64,
    /// Free list of feature states from closed flows: new flows reset
    /// and reuse these instead of allocating, so steady-state packet
    /// processing touches the allocator only while the pool is warming.
    pool: Vec<FlowFeatureState>,
    /// Number of flows whose feature state came from the pool.
    pool_hits: u64,
    /// Scratch for the finished feature vector of the flow being
    /// classified, so steady-state classification never allocates.
    feature_scratch: Vec<f64>,
    /// Scratch for exact-histogram count sorting inside feature
    /// finishes (see `GramHistogram::sum_m_log_m_with`).
    counts_scratch: Vec<u64>,
    /// Scratch verdict buffer for the batch-of-one
    /// [`process_packet`](Self::process_packet) wrapper, so the wrapper
    /// stays allocation-free once warm.
    verdict_scratch: Vec<Verdict>,
    /// Calibrated anytime model (confidence stages plus per-stage
    /// nature models); probes only run when both this and
    /// [`PipelineConfig::anytime`] are present.
    anytime_model: Option<AnytimeModel>,
    /// The anytime model's per-stage nature models in compiled form,
    /// ascending in bytes (compiled once when the model is attached).
    /// Probes predict with the stage fitted nearest below the bytes
    /// fed — the full-`b` model is near chance on small prefixes.
    anytime_compiled: Vec<(u64, CompiledNatureModel)>,
    /// Verdicts emitted by anytime probes before the buffer filled.
    early_exits: u64,
    /// Scratch for the estimated sketches' per-finish median buffers,
    /// so anytime probes never allocate (see
    /// `FlowFeatureState::finish_into_with`).
    means_scratch: Vec<f64>,
}

/// Upper bound on pooled [`FlowFeatureState`]s, so a burst of
/// concurrent flows cannot pin its high-water mark of histogram tables
/// forever. 256 comfortably covers the steady-state pending-flow count
/// of every bench/serve configuration while capping worst-case retained
/// memory.
const MAX_POOLED_STATES: usize = 256;

impl Iustitia {
    /// Builds a pipeline around a trained model.
    pub fn new(model: NatureModel, config: PipelineConfig) -> Self {
        let extractor =
            FeatureExtractor::new(config.widths.clone(), config.mode.clone(), config.seed)
                .with_battery(config.battery);
        let cdb = ClassificationDatabase::new(config.cdb);
        let rng = StdRng::seed_from_u64(config.seed ^ 0xDEFE45E);
        let compiled = model.compile();
        Iustitia {
            config,
            model,
            compiled,
            cdb,
            buffers: HashMap::new(),
            extractor,
            rng,
            queues: QueueCounters::default(),
            log: Vec::new(),
            resident: 0,
            last_sweep: f64::NEG_INFINITY,
            pool: Vec::new(),
            pool_hits: 0,
            feature_scratch: Vec::new(),
            counts_scratch: Vec::new(),
            verdict_scratch: Vec::new(),
            anytime_model: None,
            anytime_compiled: Vec::new(),
            early_exits: 0,
            means_scratch: Vec::new(),
        }
    }

    /// Attaches a calibrated anytime model (confidence stages plus
    /// per-stage nature models), compiling the stage models once.
    /// Probes only run when [`PipelineConfig::anytime`] is also set;
    /// attaching a model without it changes nothing.
    pub fn with_anytime(mut self, anytime: AnytimeModel) -> Self {
        self.anytime_compiled =
            anytime.stage_models().iter().map(|s| (s.bytes, s.model.compile())).collect();
        self.anytime_model = Some(anytime);
        self
    }

    /// Takes a feature state from the free list (resetting it) or
    /// builds a fresh one. A free function over disjoint fields so the
    /// flow-table entry borrow can stay live at the call sites.
    fn acquire_state(
        pool: &mut Vec<FlowFeatureState>,
        pool_hits: &mut u64,
        extractor: &FeatureExtractor,
        b: usize,
    ) -> FlowFeatureState {
        match pool.pop() {
            Some(mut state) => {
                extractor.reset_flow(&mut state, b);
                *pool_hits += 1;
                state
            }
            None => extractor.begin_flow(b),
        }
    }

    /// Returns a closed flow's feature state to the free list.
    fn recycle_state(&mut self, state: FlowFeatureState) {
        if self.pool.len() < MAX_POOLED_STATES {
            self.pool.push(state);
        }
    }

    /// Probes one buffering flow's partial feature vector: finish it
    /// into scratch, predict with margin using the stage model fitted
    /// nearest below `fed`, score against the centroid stages, and
    /// return the label when the score clears `threshold` AND the
    /// previous probe of this flow predicted the same label (the
    /// patience rule: two consecutive agreeing probes, so a single
    /// unstable early prediction can never classify the flow). A free
    /// function over disjoint fields so the flow-table entry borrow can
    /// stay live at the call sites (like
    /// [`acquire_state`](Self::acquire_state)); allocation-free once
    /// the scratch buffers are warm.
    #[allow(clippy::too_many_arguments)]
    fn probe_anytime(
        confidence: &ConfidenceModel,
        threshold: f64,
        stages: &mut [(u64, CompiledNatureModel)],
        features: &FlowFeatureState,
        fed: usize,
        last_probe: &mut Option<FileClass>,
        feature_scratch: &mut Vec<f64>,
        counts_scratch: &mut Vec<u64>,
        means_scratch: &mut Vec<f64>,
    ) -> Option<FileClass> {
        // The stage fitted nearest below `fed` bytes (the first when
        // `fed` undershoots them all), mirroring the centroid stage
        // selection inside `ConfidenceModel::score`.
        let mut idx = 0;
        for (i, (bytes, _)) in stages.iter().enumerate() {
            if *bytes <= fed as u64 {
                idx = i;
            } else {
                break;
            }
        }
        let (_, stage) = stages.get_mut(idx)?;
        features.finish_into_with(feature_scratch, counts_scratch, means_scratch);
        let (label, margin) = stage.try_predict_with_margin(feature_scratch).ok()?;
        let agreed = *last_probe == Some(label);
        *last_probe = Some(label);
        if !agreed {
            return None;
        }
        let score = confidence.score(feature_scratch, fed as u64, label.index(), margin);
        (score >= threshold).then_some(label)
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The trained model behind this pipeline. Verdicts come from its
    /// compiled form, built once at construction; the boxed original is
    /// kept for serialization and introspection.
    pub fn model(&self) -> &NatureModel {
        &self.model
    }

    /// The classification database (read access for monitoring).
    pub fn cdb(&self) -> &ClassificationDatabase {
        &self.cdb
    }

    /// Output-queue counters.
    pub fn queues(&self) -> &QueueCounters {
        &self.queues
    }

    /// Number of flows currently buffering (pre-classification).
    pub fn pending_flows(&self) -> usize {
        self.buffers.len()
    }

    /// Estimated heap bytes resident across all pending flows' feature
    /// state and header staging buffers (maintained incrementally; the
    /// quantity the §4.4 estimation trades against).
    pub fn resident_feature_bytes(&self) -> usize {
        self.resident
    }

    /// Number of flows whose feature state was recycled from the pool
    /// instead of freshly allocated (a steady-state pipeline trends
    /// toward `pool_hits ≈ flows classified`).
    pub fn state_pool_hits(&self) -> u64 {
        self.pool_hits
    }

    /// Feature states currently parked on the free list.
    pub fn state_pool_size(&self) -> usize {
        self.pool.len()
    }

    /// Number of verdicts emitted by anytime probes before the
    /// fixed-`b` buffer filled (0 whenever anytime is off).
    pub fn early_exit_verdicts(&self) -> u64 {
        self.early_exits
    }

    /// Drains the per-flow classification log (each entry carries the
    /// `c` and `τ_b` quantities of the delay analysis).
    pub fn take_log(&mut self) -> Vec<ClassifiedFlow> {
        std::mem::take(&mut self.log)
    }

    /// Total bytes to buffer before classifying: `b` plus the header
    /// allowance.
    pub fn buffer_capacity(&self) -> usize {
        self.config.buffer_size + self.config.header_policy.allowance()
    }

    /// Processes one packet, returning what happened to it.
    ///
    /// This is the batch-of-one wrapper around
    /// [`process_batch`](Self::process_batch): a single-element batch
    /// walks exactly the same code as a large one, so every per-packet
    /// test exercises the batch path and the zero-alloc steady-state
    /// guarantee extends to it.
    pub fn process_packet(&mut self, packet: &Packet) -> Verdict {
        let mut verdicts = std::mem::take(&mut self.verdict_scratch);
        self.process_batch(&[BatchPacket::new(packet)], &mut verdicts);
        // `process_batch` pushes exactly one verdict per input packet,
        // so a batch of one always yields exactly one; the
        // `unwrap_or` fallback below is unreachable and exists only to
        // keep this hot path free of a panicking branch.
        debug_assert_eq!(verdicts.len(), 1, "batch-of-one must yield exactly one verdict");
        let verdict = verdicts.pop().unwrap_or(Verdict::Ignored);
        self.verdict_scratch = verdicts;
        verdict
    }

    /// Processes a batch of packets in order, pushing exactly one
    /// verdict per packet into `verdicts` (cleared first).
    ///
    /// Maximal runs of consecutive same-flow data packets are processed
    /// as a group ([`Self::process_run`]): the CDB lookup and the
    /// flow-table entry are resolved once per phase of the run instead
    /// of once per packet, and payload slices stream back-to-back into
    /// the same feature state. Control and close packets are never
    /// grouped — they take the canonical per-packet path in place, so
    /// ordering semantics (CDB close removal, leftovers classification)
    /// are untouched.
    ///
    /// **Bit-identity invariant:** for any batch, the verdict sequence,
    /// every gauge and counter, the CDB contents, and the classification
    /// log are bit-for-bit what sequential
    /// [`process_packet`](Self::process_packet) calls over the same
    /// packets would produce. Group amortization only elides hash-map
    /// re-resolutions whose outcomes are provably unchanged within a
    /// phase: repeated CDB misses while a flow is buffering have no side
    /// effects, and repeated hits mutate only the record the phase
    /// already holds. Any packet that needs a slow-path event (idle
    /// sweep due, header still staging, TTL expiry, buffer full) ends
    /// its phase and re-resolves through the canonical path.
    pub fn process_batch(&mut self, batch: &[BatchPacket<'_>], verdicts: &mut Vec<Verdict>) {
        verdicts.clear();
        // lint: allow(L009) — caller-owned scratch: grows once to the largest batch seen, then reused
        verdicts.reserve(batch.len());
        let mut rest = batch;
        while let Some((first, tail)) = rest.split_first() {
            let groupable = first.packet.is_data() && !first.packet.flags.closes_flow();
            if !groupable {
                let verdict = self.process_one(first.flow, first.packet);
                // lint: allow(L009) — within the capacity reserved above
                verdicts.push(verdict);
                rest = tail;
                continue;
            }
            let mut run_len = 1;
            for p in tail {
                if p.flow != first.flow || !p.packet.is_data() || p.packet.flags.closes_flow() {
                    break;
                }
                run_len += 1;
            }
            // lint: allow(L008) — the scan above stops within tail, so run_len <= rest.len()
            let (run, remainder) = rest.split_at(run_len);
            self.process_run(first.flow, run, verdicts);
            rest = remainder;
        }
    }

    /// Processes one maximal run of same-flow data packets, pushing one
    /// verdict per packet. Each iteration of the outer loop consumes at
    /// least one packet: the sweep-due and header-staging fallbacks hand
    /// exactly one packet to [`Self::process_one`], and both amortized
    /// phases consume one before any early exit can fire.
    fn process_run(&mut self, flow: FlowId, run: &[BatchPacket<'_>], verdicts: &mut Vec<Verdict>) {
        let idle_timeout = self.config.idle_timeout;
        let ttl = self.config.cdb.reclassify_after;
        let b = self.config.buffer_size;
        let capacity = self.buffer_capacity();
        let policy = self.config.header_policy;
        let anytime = self.config.anytime;
        let mut rest = run;
        while let Some((first, tail)) = rest.split_first() {
            let now = first.packet.timestamp;
            // The idle sweep fires at most once per idle_timeout; when
            // one is due, that packet takes the canonical path (which
            // performs it), keeping sweep timing identical to
            // per-packet processing.
            if now - self.last_sweep >= idle_timeout {
                let verdict = self.process_one(flow, first.packet);
                // lint: allow(L009) — within the capacity reserved by process_batch
                verdicts.push(verdict);
                rest = tail;
                continue;
            }

            // --- Hit phase: the flow is already classified. ---
            if let Some(label) = self.cdb.lookup(&flow, now) {
                // lint: allow(L008) — forwarded has FileClass::ALL.len() slots; label.index() is always in range
                self.queues.forwarded[label.index()] += 1;
                // lint: allow(L009) — within the capacity reserved by process_batch
                verdicts.push(Verdict::Hit(label));
                rest = tail;
                // Subsequent packets refresh the same record in place —
                // the per-packet `lookup` body minus the re-hash. The
                // label cannot change while the record lives.
                if let Some(rec) = self.cdb.record_mut(&flow) {
                    while let Some((p, after)) = rest.split_first() {
                        let t = p.packet.timestamp;
                        if t - self.last_sweep >= idle_timeout {
                            break;
                        }
                        if let Some(ttl) = ttl {
                            if t - rec.classified_at > ttl {
                                // Expired: the next outer iteration's
                                // `lookup` removes the record and counts
                                // the eviction, exactly as the
                                // per-packet path would.
                                break;
                            }
                        }
                        rec.last_iat = Some((t - rec.last_seen).max(0.0));
                        rec.last_seen = t;
                        // lint: allow(L008) — forwarded has FileClass::ALL.len() slots; label.index() is always in range
                        self.queues.forwarded[label.index()] += 1;
                        // lint: allow(L009) — within the capacity reserved by process_batch
                        verdicts.push(Verdict::Hit(label));
                        rest = after;
                    }
                }
                continue;
            }

            // --- Buffering phase: resolve the flow-table entry once and
            // stream consecutive packets into the same feature state.
            // While a flow is buffering it has no CDB record (inserts
            // only happen at classification, which evicts the buffer),
            // so the per-packet lookups elided here would all miss with
            // zero side effects.
            let mut classify_at: Option<f64> = None;
            let mut early_at: Option<(f64, FileClass)> = None;
            let mut staging = false;
            {
                let (buf, mut created) = match self.buffers.entry(flow) {
                    Entry::Occupied(e) => (e.into_mut(), false),
                    Entry::Vacant(v) => {
                        let stage = match policy {
                            HeaderPolicy::StripKnown { .. } => FlowStage::Staging(Vec::new()),
                            _ => {
                                let skip_remaining = match policy {
                                    HeaderPolicy::None | HeaderPolicy::StripKnown { .. } => 0,
                                    HeaderPolicy::SkipThreshold { t } => t,
                                    HeaderPolicy::RandomSkip { t_max } => {
                                        // lint: allow(L008) — 0..=t_max is an inclusive range, never empty
                                        self.rng.gen_range(0..=t_max)
                                    }
                                };
                                FlowStage::Streaming {
                                    features: Self::acquire_state(
                                        &mut self.pool,
                                        &mut self.pool_hits,
                                        &self.extractor,
                                        b,
                                    ),
                                    fed: 0,
                                    skip_remaining,
                                    probed: 0,
                                    last_probe: None,
                                }
                            }
                        };
                        (
                            v.insert(FlowBuffer {
                                stage,
                                first_ts: now,
                                last_ts: now,
                                packets: 0,
                                seen: 0,
                            }),
                            true,
                        )
                    }
                };
                while let Some((p, after)) = rest.split_first() {
                    let t = p.packet.timestamp;
                    // Both early exits can only fire with `created`
                    // already consumed or a zero-resident Staging
                    // buffer: the first iteration's sweep check repeats
                    // the outer loop's (false) one, and a created
                    // Staging stage holds no bytes yet.
                    if t - self.last_sweep >= idle_timeout {
                        break;
                    }
                    if matches!(buf.stage, FlowStage::Staging(_)) {
                        // Header skip/strip still unresolved: the
                        // scan-and-transition logic lives in the
                        // canonical path; hand it this packet.
                        staging = true;
                        break;
                    }
                    buf.packets += 1;
                    buf.last_ts = t;
                    self.queues.buffered += 1;
                    let before = if created { 0 } else { buf.resident_bytes() };
                    created = false;
                    let room = capacity.saturating_sub(buf.seen);
                    // lint: allow(L008) — slice end is min'd with payload.len()
                    let intake = &p.packet.payload[..room.min(p.packet.payload.len())];
                    buf.seen += intake.len();
                    if let FlowStage::Streaming { features, fed, skip_remaining, .. } =
                        &mut buf.stage
                    {
                        Self::feed_streaming(features, fed, skip_remaining, intake, b);
                    }
                    self.resident = self.resident - before + buf.resident_bytes();
                    rest = after;
                    let full = match &buf.stage {
                        FlowStage::Staging(staged) => staged.len() >= capacity,
                        FlowStage::Streaming { fed, .. } => *fed >= b || buf.seen >= capacity,
                    };
                    if full {
                        classify_at = Some(t);
                        break;
                    }
                    // Anytime probe: same per-packet cadence as the
                    // canonical path, so batch verdicts stay bit-identical
                    // to per-packet processing.
                    if let Some(any) = anytime {
                        if let (
                            Some(am),
                            FlowStage::Streaming { features, fed, probed, last_probe, .. },
                        ) = (&self.anytime_model, &mut buf.stage)
                        {
                            if *fed >= any.min_bytes && *fed - *probed >= any.probe_stride {
                                *probed = *fed;
                                if let Some(label) = Self::probe_anytime(
                                    &am.confidence,
                                    any.threshold,
                                    &mut self.anytime_compiled,
                                    features,
                                    *fed,
                                    last_probe,
                                    &mut self.feature_scratch,
                                    &mut self.counts_scratch,
                                    &mut self.means_scratch,
                                ) {
                                    early_at = Some((t, label));
                                    break;
                                }
                            }
                        }
                    }
                    // lint: allow(L009) — within the capacity reserved by process_batch
                    verdicts.push(Verdict::Buffering);
                }
            }
            if staging {
                if let Some((p, after)) = rest.split_first() {
                    let verdict = self.process_one(flow, p.packet);
                    // lint: allow(L009) — within the capacity reserved by process_batch
                    verdicts.push(verdict);
                    rest = after;
                }
            } else if let Some(t) = classify_at {
                let verdict = match self.classify_flow(flow, t) {
                    Some(label) => Verdict::Classified(label),
                    None => Verdict::Ignored,
                };
                // lint: allow(L009) — within the capacity reserved by process_batch
                verdicts.push(verdict);
            } else if let Some((t, label)) = early_at {
                self.classify_early(flow, t, label);
                // lint: allow(L009) — within the capacity reserved by process_batch
                verdicts.push(Verdict::Classified(label));
            }
        }
    }

    /// The canonical single-packet path: every slow or stateful event
    /// (sweeps, closes, header staging, creation, classification) is
    /// defined here, and the batch phases only amortize lookups whose
    /// elision it proves side-effect-free.
    fn process_one(&mut self, id: FlowId, packet: &Packet) -> Verdict {
        let now = packet.timestamp;

        // Opportunistic idle sweep, at most once per idle_timeout: the
        // configured timeout is enforced even when nobody calls
        // `sweep_idle` explicitly, so stalled flows cannot pin their
        // state forever.
        if now - self.last_sweep >= self.config.idle_timeout {
            if self.last_sweep.is_finite() {
                self.sweep_idle(now);
            }
            self.last_sweep = now;
        }

        if packet.flags.closes_flow() {
            self.cdb.remove_on_close(&id);
            // A close while still buffering classifies what we have.
            if self.buffers.contains_key(&id) {
                self.classify_flow(id, now);
            }
            self.queues.passed_through += 1;
            return Verdict::Ignored;
        }
        if !packet.is_data() {
            self.queues.passed_through += 1;
            return Verdict::Ignored;
        }

        if let Some(label) = self.cdb.lookup(&id, now) {
            // lint: allow(L008) — forwarded has FileClass::ALL.len() slots; label.index() is always in range
            self.queues.forwarded[label.index()] += 1;
            return Verdict::Hit(label);
        }

        let b = self.config.buffer_size;
        let capacity = self.buffer_capacity();
        let policy = self.config.header_policy;
        let (buf, created) = match self.buffers.entry(id) {
            Entry::Occupied(e) => (e.into_mut(), false),
            Entry::Vacant(v) => {
                // Every policy except StripKnown knows its skip up
                // front, so those flows stream from the first byte and
                // never stage payload.
                let stage = match policy {
                    HeaderPolicy::StripKnown { .. } => FlowStage::Staging(Vec::new()),
                    _ => {
                        let skip_remaining = match policy {
                            HeaderPolicy::None | HeaderPolicy::StripKnown { .. } => 0,
                            HeaderPolicy::SkipThreshold { t } => t,
                            // lint: allow(L008) — 0..=t_max is an inclusive range, never empty
                            HeaderPolicy::RandomSkip { t_max } => self.rng.gen_range(0..=t_max),
                        };
                        FlowStage::Streaming {
                            features: Self::acquire_state(
                                &mut self.pool,
                                &mut self.pool_hits,
                                &self.extractor,
                                b,
                            ),
                            fed: 0,
                            skip_remaining,
                            probed: 0,
                            last_probe: None,
                        }
                    }
                };
                (
                    v.insert(FlowBuffer {
                        stage,
                        first_ts: now,
                        last_ts: now,
                        packets: 0,
                        seen: 0,
                    }),
                    true,
                )
            }
        };

        buf.packets += 1;
        buf.last_ts = now;
        self.queues.buffered += 1;

        // A fresh estimated-mode flow allocates its sketch trackers up
        // front, so a newly created buffer contributes its entire
        // resident footprint, not a delta from a prior value.
        let before = if created { 0 } else { buf.resident_bytes() };
        let room = capacity.saturating_sub(buf.seen);
        // lint: allow(L008) — slice end is min'd with payload.len()
        let intake = &packet.payload[..room.min(packet.payload.len())];
        buf.seen += intake.len();

        match &mut buf.stage {
            FlowStage::Staging(staging) => {
                // lint: allow(L009) — staging buffers only the bounded pre-resolution prefix (see L006), once per flow
                staging.extend_from_slice(intake);
                let resolved_skip = match scan_application_header(staging) {
                    HeaderScan::Resolved(_, offset) => Some(offset),
                    // Unknown application: the threshold-T fallback is
                    // now final too.
                    HeaderScan::Unknown => match policy {
                        HeaderPolicy::StripKnown { t } => Some(t),
                        // Staging only happens under StripKnown.
                        _ => Some(0),
                    },
                    HeaderScan::NeedMore => None,
                };
                if let Some(skip) = resolved_skip {
                    let staged = std::mem::take(staging);
                    let mut features = Self::acquire_state(
                        &mut self.pool,
                        &mut self.pool_hits,
                        &self.extractor,
                        b,
                    );
                    let mut fed = 0usize;
                    let mut skip_remaining = skip;
                    if staged.len() > skip {
                        let take = (staged.len() - skip).min(b);
                        // lint: allow(L008) — skip < staged.len() on this branch and take <= staged.len() - skip
                        features.update(&staged[skip..skip + take]);
                        fed = take;
                        skip_remaining = 0;
                    } else {
                        skip_remaining -= staged.len();
                    }
                    buf.stage = FlowStage::Streaming {
                        features,
                        fed,
                        skip_remaining,
                        probed: 0,
                        last_probe: None,
                    };
                }
            }
            FlowStage::Streaming { features, fed, skip_remaining, .. } => {
                Self::feed_streaming(features, fed, skip_remaining, intake, b);
            }
        }
        let after = buf.resident_bytes();
        self.resident = self.resident - before + after;

        let full = match &buf.stage {
            FlowStage::Staging(staged) => staged.len() >= capacity,
            // A resolved header longer than the allowance can leave
            // fewer than `b` window bytes in the first `capacity`
            // payload bytes; `seen >= capacity` classifies those flows
            // from what fits, like the old full-buffer path did.
            FlowStage::Streaming { fed, .. } => *fed >= b || buf.seen >= capacity,
        };
        if full {
            return match self.classify_flow(id, now) {
                Some(label) => Verdict::Classified(label),
                None => Verdict::Ignored,
            };
        }
        // Anytime probe: a confident partial vector classifies the flow
        // now instead of waiting for the `fed >= b` cap above.
        if let Some(any) = self.config.anytime {
            if let (Some(am), FlowStage::Streaming { features, fed, probed, last_probe, .. }) =
                (&self.anytime_model, &mut buf.stage)
            {
                if *fed >= any.min_bytes && *fed - *probed >= any.probe_stride {
                    *probed = *fed;
                    if let Some(label) = Self::probe_anytime(
                        &am.confidence,
                        any.threshold,
                        &mut self.anytime_compiled,
                        features,
                        *fed,
                        last_probe,
                        &mut self.feature_scratch,
                        &mut self.counts_scratch,
                        &mut self.means_scratch,
                    ) {
                        self.classify_early(id, now, label);
                        return Verdict::Classified(label);
                    }
                }
            }
        }
        Verdict::Buffering
    }

    /// Discards `skip_remaining` leading bytes of `chunk`, then feeds
    /// up to the remaining classification window into the feature state.
    fn feed_streaming(
        features: &mut FlowFeatureState,
        fed: &mut usize,
        skip_remaining: &mut usize,
        mut chunk: &[u8],
        b: usize,
    ) {
        if *skip_remaining > 0 {
            let skipped = (*skip_remaining).min(chunk.len());
            *skip_remaining -= skipped;
            // lint: allow(L008) — skipped <= chunk.len() by the min() above
            chunk = &chunk[skipped..];
        }
        let take = b.saturating_sub(*fed).min(chunk.len());
        if take > 0 {
            // lint: allow(L008) — take <= chunk.len() by the min() above
            features.update(&chunk[..take]);
            *fed += take;
        }
    }

    /// Classifies-or-drops every flow idle longer than the configured
    /// timeout. Called opportunistically by
    /// [`process_packet`](Self::process_packet) and available publicly
    /// as the serve layer's drain barrier. Returns the number of flows
    /// evicted (a flow whose effective payload is empty is dropped
    /// without a verdict but still counts).
    pub fn sweep_idle(&mut self, now: f64) -> usize {
        let mut idle: Vec<FlowId> = self
            .buffers
            .iter()
            .filter(|(_, b)| now - b.last_ts > self.config.idle_timeout)
            .map(|(&id, _)| id)
            // lint: allow(L009) — idle sweep is the periodic maintenance path, not per-packet work
            .collect();
        // Evict in flow-ID order, not HashMap order: two pipelines fed
        // identical traffic then produce identical classification logs
        // regardless of per-instance hash seeds — the property the
        // batch ≡ per-packet equivalence suite (and the bench's
        // pre-timing assertion) compares against.
        idle.sort_unstable();
        let n = idle.len();
        for id in idle {
            self.classify_flow(id, now);
        }
        n
    }

    /// Alias of [`sweep_idle`](Self::sweep_idle), kept for callers of
    /// the pre-sweep API.
    pub fn flush_idle(&mut self, now: f64) -> usize {
        self.sweep_idle(now)
    }

    /// Classifies and evicts one buffered flow (used by full-buffer,
    /// idle, and close paths).
    fn classify_flow(&mut self, id: FlowId, now: f64) -> Option<FileClass> {
        // lint: allow(L008) — HashMap::remove never panics (the KB is conservative for Vec::remove)
        let buf = self.buffers.remove(&id)?;
        self.resident -= buf.resident_bytes();
        match buf.stage {
            // Header decision never resolved (StripKnown flow evicted
            // while staging): classify one-shot from the staged prefix,
            // exactly like the historical buffer-then-compute path.
            FlowStage::Staging(staged) => {
                let payload = self.staged_payload(&staged);
                if payload.is_empty() {
                    return None;
                }
                let vector = self.extractor.extract(payload);
                self.feature_scratch.clear();
                // lint: allow(L006, L009) — finished f64 features (one per width) into reused scratch, not payload
                self.feature_scratch.extend_from_slice(&vector);
            }
            FlowStage::Streaming { features, fed, .. } => {
                if fed == 0 {
                    // All observed bytes were header/skip: nothing to
                    // classify on, as in the old empty-payload path —
                    // but the state still returns to the pool.
                    self.recycle_state(features);
                    return None;
                }
                features.finish_into(&mut self.feature_scratch, &mut self.counts_scratch);
                self.recycle_state(features);
            }
        }
        // A model trained on a different feature width than the
        // pipeline extracts cannot render a verdict; such flows are
        // left unclassified (the CDB miss path treats them as
        // Ignored) rather than taking the hot path down with a panic.
        let label = match self.compiled.try_predict(&self.feature_scratch) {
            Ok(label) => label,
            Err(_) => return None,
        };
        self.commit_verdict(
            ClassifiedFlow {
                id,
                label,
                packets: buf.packets,
                fill_time: buf.last_ts - buf.first_ts,
                buffered_bytes: buf.seen,
                early_exit: false,
            },
            now,
        );
        Some(label)
    }

    /// Evicts one buffering flow with a probe-rendered verdict — the
    /// anytime analogue of [`classify_flow`](Self::classify_flow). The
    /// label was already predicted from the partial vector, so only
    /// eviction and bookkeeping remain.
    fn classify_early(&mut self, id: FlowId, now: f64, label: FileClass) {
        // Callers only probe flows they hold a live buffer for, but the
        // defensive miss path keeps this total.
        // lint: allow(L008) — HashMap::remove returns Option; the None arm returns
        let buf = match self.buffers.remove(&id) {
            Some(buf) => buf,
            None => return,
        };
        self.resident -= buf.resident_bytes();
        if let FlowStage::Streaming { features, .. } = buf.stage {
            self.recycle_state(features);
        }
        self.commit_verdict(
            ClassifiedFlow {
                id,
                label,
                packets: buf.packets,
                fill_time: buf.last_ts - buf.first_ts,
                buffered_bytes: buf.seen,
                early_exit: true,
            },
            now,
        );
    }

    /// Records a rendered verdict: CDB insert, queue accounting, early
    /// exit counting, log entry (the shared tail of the full-buffer and
    /// anytime-early paths).
    fn commit_verdict(&mut self, flow: ClassifiedFlow, now: f64) {
        self.cdb.insert(flow.id, flow.label, now);
        // lint: allow(L008) — forwarded has FileClass::ALL.len() slots; label.index() is always in range
        self.queues.forwarded[flow.label.index()] += flow.packets as u64;
        if flow.early_exit {
            self.early_exits += 1;
        }
        self.log.push(flow);
    }

    /// Applies the header policy to a still-staged prefix, yielding the
    /// `b` bytes the entropy vector is computed over (the one-shot
    /// fallback for flows evicted before their header resolved).
    fn staged_payload<'a>(&self, data: &'a [u8]) -> &'a [u8] {
        let b = self.config.buffer_size;
        let start = match self.config.header_policy {
            HeaderPolicy::None => 0,
            HeaderPolicy::SkipThreshold { t } => t.min(data.len()),
            // Non-StripKnown flows never stage; arms kept for totality.
            HeaderPolicy::RandomSkip { .. } => 0,
            HeaderPolicy::StripKnown { t } => match strip_application_header(data) {
                Some((_, offset)) => offset.min(data.len()),
                None => t.min(data.len()),
            },
        };
        let end = (start + b).min(data.len());
        // lint: allow(L008) — start <= end <= data.len() by the min() clamps above
        &data[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_netsim::{FiveTuple, TcpFlags};
    use std::net::Ipv4Addr;

    /// A CART model trained on `b`-byte prefixes of a real synthetic
    /// corpus, so its decision bands match what `b`-byte buffers can
    /// actually produce (h1 of a 32-byte window is capped at
    /// log2(32)/8 ≈ 0.625).
    fn trained_model(b: usize) -> NatureModel {
        let corpus = iustitia_corpus::CorpusBuilder::new(33)
            .files_per_class(80)
            .size_range(1024, 4096)
            .build();
        crate::model::train_from_corpus(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            crate::features::TrainingMethod::Prefix { b },
            crate::features::FeatureMode::Exact,
            &crate::model::ModelKind::paper_cart(),
            33,
        )
        .expect("train")
    }

    fn toy_model() -> NatureModel {
        trained_model(32)
    }

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), port, Ipv4Addr::new(10, 0, 0, 2), 443)
    }

    fn data_packet(port: u16, t: f64, payload: &[u8]) -> Packet {
        Packet { timestamp: t, tuple: tuple(port), flags: TcpFlags::ACK, payload: payload.to_vec() }
    }

    // Representative prose: the 4-class b=32 model puts degenerate
    // ultra-low-entropy 32-byte windows (e.g. "the cat sat on the
    // mat…") below the text band, next to armored-ciphertext headers.
    fn text_payload(n: usize) -> Vec<u8> {
        b"Dear colleagues, please review the quarterly budget report.\n"
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    fn encrypted_payload(n: usize) -> Vec<u8> {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect()
    }

    #[test]
    fn classifies_when_buffer_fills_then_hits_cdb() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(1));
        // Consecutive halves of the prose, so the filled 32-byte
        // buffer is the sentence prefix, not a 16-byte stutter.
        let prose = text_payload(32);
        let p1 = data_packet(1000, 0.0, &prose[..16]);
        assert_eq!(ius.process_packet(&p1), Verdict::Buffering);
        let p2 = data_packet(1000, 0.1, &prose[16..]);
        assert_eq!(ius.process_packet(&p2), Verdict::Classified(FileClass::Text));
        let p3 = data_packet(1000, 0.2, &text_payload(100));
        assert_eq!(ius.process_packet(&p3), Verdict::Hit(FileClass::Text));
        assert_eq!(ius.cdb().len(), 1);
        assert_eq!(ius.pending_flows(), 0);
        let log = ius.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].packets, 2);
        assert!((log[0].fill_time - 0.1).abs() < 1e-9);
    }

    #[test]
    fn encrypted_flow_labeled_encrypted() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(2));
        let p = data_packet(2000, 0.0, &encrypted_payload(64));
        assert_eq!(ius.process_packet(&p), Verdict::Classified(FileClass::Encrypted));
    }

    #[test]
    fn control_packets_pass_through() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(3));
        let syn = Packet { timestamp: 0.0, tuple: tuple(1), flags: TcpFlags::SYN, payload: vec![] };
        assert_eq!(ius.process_packet(&syn), Verdict::Ignored);
        assert_eq!(ius.queues().passed_through, 1);
    }

    #[test]
    fn fin_removes_cdb_record() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(4));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(64)));
        assert_eq!(ius.cdb().len(), 1);
        let fin = Packet {
            timestamp: 1.0,
            tuple: tuple(1),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            payload: vec![],
        };
        assert_eq!(ius.process_packet(&fin), Verdict::Ignored);
        assert_eq!(ius.cdb().len(), 0);
    }

    #[test]
    fn close_during_buffering_classifies_partial() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(5));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(16)));
        assert_eq!(ius.pending_flows(), 1);
        let rst = Packet { timestamp: 0.5, tuple: tuple(1), flags: TcpFlags::RST, payload: vec![] };
        ius.process_packet(&rst);
        assert_eq!(ius.pending_flows(), 0);
        // Classified from the 16 bytes we had, then removed by the RST
        // itself? No: close removes CDB record *before* classification
        // of leftovers inserts it, so the record remains.
        assert_eq!(ius.take_log().len(), 1);
    }

    #[test]
    fn idle_flush_classifies_stalled_flows() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(6));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(8)));
        assert_eq!(ius.flush_idle(1.0), 0, "not idle long enough");
        assert_eq!(ius.flush_idle(10.0), 1);
        assert_eq!(ius.pending_flows(), 0);
        assert_eq!(ius.take_log().len(), 1);
    }

    #[test]
    fn strip_known_header_classifies_payload_not_header() {
        let model = trained_model(64);
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::StripKnown { t: 128 },
            ..PipelineConfig::headline(7)
        };
        let mut ius = Iustitia::new(model, config);
        // HTTP header (text) followed by ciphertext payload.
        let mut payload =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\r\n".to_vec();
        let header_len = payload.len();
        payload.extend_from_slice(&encrypted_payload(ius.buffer_capacity()));
        let verdict = ius.process_packet(&data_packet(1, 0.0, &payload));
        assert_eq!(
            verdict,
            Verdict::Classified(FileClass::Encrypted),
            "header {header_len}B must be ignored"
        );
    }

    #[test]
    fn skip_threshold_ignores_prefix_padding() {
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::SkipThreshold { t: 100 },
            ..PipelineConfig::headline(8)
        };
        let mut ius = Iustitia::new(trained_model(64), config);
        // 100 bytes of text "padding", then ciphertext.
        let mut payload = text_payload(100);
        payload.extend_from_slice(&encrypted_payload(64));
        let verdict = ius.process_packet(&data_packet(1, 0.0, &payload));
        assert_eq!(verdict, Verdict::Classified(FileClass::Encrypted));
    }

    #[test]
    fn buffer_capacity_includes_allowance() {
        let config = PipelineConfig {
            buffer_size: 32,
            header_policy: HeaderPolicy::SkipThreshold { t: 1468 },
            ..PipelineConfig::headline(9)
        };
        let ius = Iustitia::new(toy_model(), config);
        assert_eq!(ius.buffer_capacity(), 1500);
    }

    #[test]
    fn udp_flows_classify_like_tcp() {
        use std::net::Ipv4Addr;
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(11));
        let tuple = iustitia_netsim::FiveTuple::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            53,
            Ipv4Addr::new(5, 6, 7, 8),
            5060,
        );
        let p =
            Packet { timestamp: 0.0, tuple, flags: TcpFlags::empty(), payload: text_payload(64) };
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
        assert_eq!(ius.cdb().len(), 1);
    }

    #[test]
    fn estimated_mode_pipeline_classifies() {
        use iustitia_entropy::EstimatorConfig;
        let config = PipelineConfig {
            buffer_size: 1024,
            mode: crate::features::FeatureMode::Estimated(EstimatorConfig::svm_optimal()),
            ..PipelineConfig::headline(12)
        };
        // Model trained on exact features of 1024-byte prefixes;
        // estimated features at matched parameters stay close.
        let mut ius = Iustitia::new(trained_model(1024), config);
        let p = data_packet(7, 0.0, &encrypted_payload(1024));
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
    }

    #[test]
    fn random_skip_adds_allowance() {
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::RandomSkip { t_max: 256 },
            ..PipelineConfig::headline(13)
        };
        let ius = Iustitia::new(toy_model(), config);
        assert_eq!(ius.buffer_capacity(), 320);
    }

    #[test]
    fn oversized_first_packet_is_truncated_to_capacity() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(14));
        let p = data_packet(9, 0.0, &text_payload(5000));
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
        let log = ius.take_log();
        assert_eq!(log[0].buffered_bytes, 32);
    }

    #[test]
    fn queue_counters_accumulate() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(10));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(64)));
        ius.process_packet(&data_packet(1, 0.1, &text_payload(10)));
        ius.process_packet(&data_packet(1, 0.2, &text_payload(10)));
        assert_eq!(ius.queues().forwarded[FileClass::Text.index()], 3);
    }

    /// Regression for the pending-flow leak: a stalled flow must be
    /// evicted by traffic on *other* flows, without anyone calling
    /// `sweep_idle` explicitly.
    #[test]
    fn opportunistic_sweep_evicts_stalled_flows() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(15));
        // Flow A stalls with a partial buffer at t=0.
        ius.process_packet(&data_packet(1, 0.0, &text_payload(8)));
        assert_eq!(ius.pending_flows(), 1);
        // A packet for unrelated flow B, one idle-timeout later,
        // triggers the opportunistic sweep that classifies A.
        ius.process_packet(&data_packet(2, 10.0, &text_payload(8)));
        assert_eq!(ius.pending_flows(), 1, "A evicted, B pending");
        let log = ius.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].id, FlowId::of_tuple(&tuple(1)));
        assert_eq!(log[0].buffered_bytes, 8);
    }

    /// Flow-state pooling: a classified flow's feature state must be
    /// recycled into the next flow, with identical verdicts.
    #[test]
    fn flow_state_pool_recycles_across_flows() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(17));
        assert_eq!(ius.state_pool_size(), 0);
        assert_eq!(ius.state_pool_hits(), 0);
        // First flow allocates fresh state; classifying parks it.
        let v1 = ius.process_packet(&data_packet(1, 0.0, &text_payload(64)));
        assert_eq!(v1, Verdict::Classified(FileClass::Text));
        assert_eq!(ius.state_pool_size(), 1);
        assert_eq!(ius.state_pool_hits(), 0);
        // Second flow reuses it and still classifies correctly.
        let v2 = ius.process_packet(&data_packet(2, 0.1, &encrypted_payload(64)));
        assert_eq!(v2, Verdict::Classified(FileClass::Encrypted));
        assert_eq!(ius.state_pool_hits(), 1);
        assert_eq!(ius.state_pool_size(), 1);
        // Many sequential flows keep hitting the single pooled state.
        for (i, port) in (3u16..40).enumerate() {
            ius.process_packet(&data_packet(port, 0.2 + i as f64 * 0.001, &text_payload(64)));
        }
        assert_eq!(ius.state_pool_hits(), 38);
        assert_eq!(ius.state_pool_size(), 1);
    }

    /// The 4-class vertical slice: a battery-enabled pipeline with a
    /// battery-trained model separates compressed streams from
    /// ciphertext, which the entropy vector alone cannot do.
    #[test]
    fn battery_pipeline_classifies_compressed_streams() {
        use rand::SeedableRng;
        let corpus = iustitia_corpus::CorpusBuilder::new(33)
            .files_per_class(60)
            .size_range(1024, 4096)
            .build();
        let model = crate::model::train_from_corpus_battery(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            crate::features::TrainingMethod::Prefix { b: 2048 },
            crate::features::FeatureMode::Exact,
            &crate::model::ModelKind::paper_cart(),
            33,
        )
        .expect("train");
        let config =
            PipelineConfig { buffer_size: 2048, battery: true, ..PipelineConfig::headline(44) };
        let mut ius = Iustitia::new(model, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut right = 0;
        for port in 0..20u16 {
            let data = iustitia_corpus::compressed::generate(4096, &mut rng);
            let v = ius.process_packet(&data_packet(
                3000 + port,
                f64::from(port) * 0.01,
                &data[..2048.min(data.len())],
            ));
            if v == Verdict::Classified(FileClass::Compressed) {
                right += 1;
            }
        }
        assert!(right >= 14, "compressed streams classified as compressed: {right}/20");
    }

    /// The tentpole invariant: a pending flow's heap footprint is the
    /// feature state (O(distinct grams)), not the payload (O(b)).
    #[test]
    fn pending_flow_state_does_not_scale_with_buffer_size() {
        let config = PipelineConfig { buffer_size: 2048, ..PipelineConfig::headline(16) };
        let mut ius = Iustitia::new(toy_model(), config);
        let constant = vec![0x61u8; 1024];
        assert_eq!(ius.process_packet(&data_packet(1, 0.0, &constant)), Verdict::Buffering);
        assert_eq!(ius.process_packet(&data_packet(1, 0.1, &constant[..512])), Verdict::Buffering);
        let resident = ius.resident_feature_bytes();
        assert!(
            resident > 0 && resident <= 8 * crate::features::BYTES_PER_COUNTER,
            "1536 buffered bytes should be resident as a handful of gram \
             counters, got {resident}B"
        );
        // Filling the window classifies and releases all state.
        assert!(matches!(
            ius.process_packet(&data_packet(1, 0.2, &constant[..512])),
            Verdict::Classified(_)
        ));
        assert_eq!(ius.resident_feature_bytes(), 0);
        assert_eq!(ius.pending_flows(), 0);
    }

    /// One `process_batch` call over a same-flow run: the first packets
    /// fill the buffer, the completing packet classifies, and the rest
    /// of the run forwards as CDB hits off the held record — with the
    /// same counters sequential processing would leave.
    #[test]
    fn batch_run_classifies_then_forwards_hits() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(18));
        let prose = text_payload(32);
        let packets: Vec<Packet> = vec![
            data_packet(1, 0.00, &prose[..16]),
            data_packet(1, 0.01, &prose[16..]),
            data_packet(1, 0.02, &text_payload(10)),
            data_packet(1, 0.03, &text_payload(10)),
            data_packet(1, 0.04, &text_payload(10)),
        ];
        let items: Vec<BatchPacket<'_>> = packets.iter().map(BatchPacket::new).collect();
        let mut verdicts = Vec::new();
        ius.process_batch(&items, &mut verdicts);
        assert_eq!(
            verdicts,
            vec![
                Verdict::Buffering,
                Verdict::Classified(FileClass::Text),
                Verdict::Hit(FileClass::Text),
                Verdict::Hit(FileClass::Text),
                Verdict::Hit(FileClass::Text),
            ]
        );
        // 2 buffered packets forwarded at classification + 3 hits.
        assert_eq!(ius.queues().forwarded[FileClass::Text.index()], 5);
        assert_eq!(ius.pending_flows(), 0);
        assert_eq!(ius.take_log().len(), 1);
    }

    /// Close and control packets inside a batch stay un-grouped and keep
    /// their ordering semantics (close removes the CDB record even with
    /// same-flow data packets on both sides).
    #[test]
    fn batch_with_interleaved_close_matches_sequential_semantics() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(19));
        let fin = Packet {
            timestamp: 0.02,
            tuple: tuple(1),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            payload: vec![],
        };
        let packets: Vec<Packet> = vec![
            data_packet(1, 0.00, &text_payload(64)), // classifies (b = 32)
            data_packet(1, 0.01, &text_payload(8)),  // hit
            fin,                                     // removes the record
            data_packet(1, 0.03, &text_payload(8)),  // miss again → buffering
        ];
        let items: Vec<BatchPacket<'_>> = packets.iter().map(BatchPacket::new).collect();
        let mut verdicts = Vec::new();
        ius.process_batch(&items, &mut verdicts);
        assert_eq!(
            verdicts,
            vec![
                Verdict::Classified(FileClass::Text),
                Verdict::Hit(FileClass::Text),
                Verdict::Ignored,
                Verdict::Buffering,
            ]
        );
        assert_eq!(ius.cdb().len(), 0);
        assert_eq!(ius.pending_flows(), 1);
    }

    /// A model trained on a different feature width than the pipeline
    /// extracts must leave flows unclassified (Ignored), not panic the
    /// hot path.
    #[test]
    fn width_mismatched_model_yields_ignored_not_panic() {
        let mut ds = iustitia_ml::Dataset::new(1, FileClass::names());
        for i in 0..10 {
            let x = i as f64 / 50.0;
            ds.push(vec![0.45 + x], FileClass::Text.index());
            ds.push(vec![0.70 + x], FileClass::Binary.index());
            ds.push(vec![0.97 + x / 10.0], FileClass::Encrypted.index());
            ds.push(vec![0.92 + x / 10.0], FileClass::Compressed.index());
        }
        let narrow =
            NatureModel::train(&ds, &crate::model::ModelKind::paper_cart()).expect("train");
        // headline() extracts 4 svm-selected widths; the model wants 1.
        let mut ius = Iustitia::new(narrow, PipelineConfig::headline(7));
        assert_eq!(ius.process_packet(&data_packet(1, 0.0, &text_payload(16))), Verdict::Buffering);
        assert_eq!(ius.process_packet(&data_packet(1, 0.1, &text_payload(16))), Verdict::Ignored);
        assert_eq!(ius.pending_flows(), 0, "the flow is still evicted");
        assert_eq!(ius.cdb().len(), 0, "no verdict is cached");
        assert!(ius.take_log().is_empty());
    }

    /// A one-stage anytime model over the headline extractor's feature
    /// width. Its centroids don't matter for these tests: with
    /// threshold 0.0 every probe clears the score bar, so the patience
    /// rule alone decides (the second consecutive agreeing probe
    /// fires), and with
    /// [`ANYTIME_THRESHOLD_DISABLED`](crate::model::ANYTIME_THRESHOLD_DISABLED)
    /// none ever does.
    fn toy_anytime() -> AnytimeModel {
        let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 1);
        let mut ds =
            iustitia_ml::Dataset::new(fx.extract(&text_payload(64)).len(), FileClass::names());
        // All four classes must be covered for training, and they must
        // be separable enough that consecutive probes of one payload
        // agree (the patience rule needs stable labels): binary is a
        // constant byte, compressed a short repeating cycle.
        for i in 0..8 {
            ds.push(fx.extract(&text_payload(64 + i)), FileClass::Text.index());
            ds.push(fx.extract(&encrypted_payload(64 + i)), FileClass::Encrypted.index());
            ds.push(fx.extract(&vec![0x7f; 64 + i]), FileClass::Binary.index());
            let cycle: Vec<u8> = (0..64 + i).map(|j| (j % 7) as u8).collect();
            ds.push(fx.extract(&cycle), FileClass::Compressed.index());
        }
        let stage_model = NatureModel::train(&ds, &crate::model::ModelKind::paper_cart())
            .expect("two-class toy dataset");
        AnytimeModel::new(
            ConfidenceModel::fit(&[(16, &ds)], 0.0),
            vec![crate::model::AnytimeStageModel { bytes: 16, model: stage_model }],
        )
    }

    #[test]
    fn anytime_probe_classifies_before_buffer_fills() {
        let config = PipelineConfig {
            buffer_size: 2048,
            anytime: Some(AnytimeConfig { threshold: 0.0, min_bytes: 16, probe_stride: 1 }),
            ..PipelineConfig::headline(9)
        };
        let mut ius = Iustitia::new(toy_model(), config).with_anytime(toy_anytime());
        // First probe only arms the patience rule; the second
        // consecutive agreeing probe renders the verdict. A constant
        // payload keeps both probes' labels stable (its feature vector
        // is degenerate at any prefix length).
        let payload = vec![0x7f; 64];
        let first = ius.process_packet(&data_packet(1, 0.0, &payload[..32]));
        assert_eq!(first, Verdict::Buffering, "one probe never fires alone");
        let verdict = ius.process_packet(&data_packet(1, 0.01, &payload[32..]));
        assert!(matches!(verdict, Verdict::Classified(_)), "fires at 64 of 2048 B: {verdict:?}");
        assert_eq!(ius.early_exit_verdicts(), 1);
        assert_eq!(ius.pending_flows(), 0);
        let log = ius.take_log();
        assert_eq!(log.len(), 1);
        assert!(log[0].early_exit);
        assert_eq!(log[0].buffered_bytes, 64, "verdict from 64 bytes, not b");
        // The early label went into the CDB like any other verdict.
        let next = ius.process_packet(&data_packet(1, 0.1, &encrypted_payload(32)));
        assert!(matches!(next, Verdict::Hit(_)), "{next:?}");
    }

    /// With the disabled sentinel the probes run (stride bookkeeping
    /// and all) but can never fire, so the pipeline is observably
    /// identical to one with no anytime machinery at all.
    #[test]
    fn disabled_threshold_never_fires_and_matches_fixed_b() {
        let model = trained_model(256);
        let disabled = AnytimeConfig {
            threshold: crate::model::ANYTIME_THRESHOLD_DISABLED,
            min_bytes: 16,
            probe_stride: 1,
        };
        let mut plain = Iustitia::new(
            model.clone(),
            PipelineConfig { buffer_size: 256, ..PipelineConfig::headline(10) },
        );
        let mut probed = Iustitia::new(
            model,
            PipelineConfig {
                buffer_size: 256,
                anytime: Some(disabled),
                ..PipelineConfig::headline(10)
            },
        )
        .with_anytime(toy_anytime());
        for port in 1..6u16 {
            let payload = if port % 2 == 0 { encrypted_payload(512) } else { text_payload(512) };
            for (i, chunk) in payload.chunks(96).enumerate() {
                let p = data_packet(port, i as f64 * 0.01, chunk);
                assert_eq!(plain.process_packet(&p), probed.process_packet(&p));
            }
        }
        assert_eq!(probed.early_exit_verdicts(), 0);
        assert_eq!(plain.take_log(), probed.take_log());
        assert_eq!(plain.queues(), probed.queues());
        assert_eq!(plain.cdb().len(), probed.cdb().len());
    }

    /// Early exits fire at the same packet — and record the same
    /// bytes-at-verdict — whether the flow arrives as one batch or as
    /// single packets.
    #[test]
    fn batch_early_exit_matches_per_packet() {
        let model = toy_model();
        let config = PipelineConfig {
            buffer_size: 2048,
            anytime: Some(AnytimeConfig { threshold: 0.0, min_bytes: 16, probe_stride: 1 }),
            ..PipelineConfig::headline(11)
        };
        let mut seq = Iustitia::new(model.clone(), config.clone()).with_anytime(toy_anytime());
        let mut bat = Iustitia::new(model, config).with_anytime(toy_anytime());
        let payload = encrypted_payload(40);
        let packets: Vec<Packet> = payload
            .chunks(8)
            .enumerate()
            .map(|(i, c)| data_packet(7, i as f64 * 0.001, c))
            .collect();
        let expected: Vec<Verdict> = packets.iter().map(|p| seq.process_packet(p)).collect();
        let items: Vec<BatchPacket<'_>> = packets.iter().map(BatchPacket::new).collect();
        let mut verdicts = Vec::new();
        bat.process_batch(&items, &mut verdicts);
        assert_eq!(verdicts, expected);
        // 8 B is below min_bytes — no probe; the second packet (fed =
        // 16) probes and arms the patience rule; the third's agreeing
        // probe fires; the rest hit the CDB.
        assert!(matches!(expected[0], Verdict::Buffering), "{expected:?}");
        assert!(matches!(expected[1], Verdict::Buffering), "{expected:?}");
        assert!(matches!(expected[2], Verdict::Classified(_)), "{expected:?}");
        assert!(matches!(expected[3], Verdict::Hit(_)), "{expected:?}");
        assert_eq!(seq.take_log(), bat.take_log());
        assert_eq!(seq.early_exit_verdicts(), 1);
        assert_eq!(bat.early_exit_verdicts(), 1);
        assert_eq!(seq.queues(), bat.queues());
    }
}
