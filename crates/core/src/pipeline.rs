//! The online classification pipeline of Figure 1.
//!
//! Per packet: hash the header into a flow ID, look the flow up in the
//! [CDB](crate::cdb); on a hit, forward to the flow's output queue.
//! Otherwise buffer the payload; once `b` bytes (plus any header
//! allowance) have accumulated — or the flow goes idle — extract the
//! entropy vector, classify, store the label in the CDB, and drain the
//! buffer to the right queue. FIN/RST packets remove CDB records.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iustitia_corpus::{strip_application_header, FileClass};
use iustitia_netsim::Packet;

use crate::cdb::{CdbConfig, ClassificationDatabase, FlowId};
use crate::features::{FeatureExtractor, FeatureMode};
use crate::model::NatureModel;
use iustitia_entropy::FeatureWidths;

/// How application-layer headers are handled before classification
/// (§4.3 and the §4.6 padding defense).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HeaderPolicy {
    /// Classify from the first payload byte (header-free deployments:
    /// FTP-data, most P2P transfer flows).
    None,
    /// Strip recognized HTTP/SMTP/POP3/IMAP headers by signature; for
    /// unrecognized flows fall back to skipping `t` bytes (the paper's
    /// threshold `T` policy for unknown headers).
    StripKnown {
        /// Fallback threshold `T` for unknown applications.
        t: usize,
    },
    /// Always treat byte `t + 1` as the start of the flow.
    SkipThreshold {
        /// Threshold `T`.
        t: usize,
    },
    /// Defense: skip a *random* number of bytes in `[0, t_max]` so an
    /// attacker cannot know which bytes will be classified.
    RandomSkip {
        /// Maximum skip `T`.
        t_max: usize,
    },
}

impl HeaderPolicy {
    /// Extra bytes that must be buffered beyond `b` to cover the
    /// largest possible header/skip.
    pub fn allowance(&self) -> usize {
        match *self {
            HeaderPolicy::None => 0,
            HeaderPolicy::StripKnown { t } => t,
            HeaderPolicy::SkipThreshold { t } => t,
            HeaderPolicy::RandomSkip { t_max } => t_max,
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineConfig {
    /// Classification buffer size `b` in bytes (paper: 32 for
    /// header-free flows, 1024+ with header handling).
    pub buffer_size: usize,
    /// Entropy-vector feature widths (must match the trained model).
    pub widths: FeatureWidths,
    /// Exact or `(δ,ε)`-estimated features.
    pub mode: FeatureMode,
    /// Header handling.
    pub header_policy: HeaderPolicy,
    /// CDB policy.
    pub cdb: CdbConfig,
    /// Classify a partially filled buffer after this much idle time
    /// (the paper classifies "when the buffer of a flow is full" or
    /// "stops receiving packets for a certain period").
    pub idle_timeout: f64,
    /// RNG seed (random skip offsets, estimator sampling).
    pub seed: u64,
}

impl PipelineConfig {
    /// The paper's headline operating point: `b = 32`, exact entropy
    /// vectors over `φ′_SVM`, no header handling.
    pub fn headline(seed: u64) -> Self {
        PipelineConfig {
            buffer_size: 32,
            widths: FeatureWidths::svm_selected(),
            mode: FeatureMode::Exact,
            header_policy: HeaderPolicy::None,
            cdb: CdbConfig::default(),
            idle_timeout: 5.0,
            seed,
        }
    }
}

/// What the pipeline did with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// CDB hit — forwarded straight to the labeled queue.
    Hit(FileClass),
    /// Unknown flow, payload buffered, classification pending.
    Buffering,
    /// This packet completed the buffer; the flow was classified now.
    Classified(FileClass),
    /// Control packet (no payload) or close signal — passed through.
    Ignored,
}

/// A completed per-flow classification, with the delay-analysis
/// quantities of §4.5 (`c` packets to fill the buffer, `τ_b` fill
/// time).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClassifiedFlow {
    /// Flow ID.
    pub id: FlowId,
    /// Assigned label.
    pub label: FileClass,
    /// Number of data packets needed to fill the buffer (`c`).
    pub packets: u32,
    /// Buffer fill time `τ_b` (first data packet → classification).
    pub fill_time: f64,
    /// Bytes that were in the buffer when classified.
    pub buffered_bytes: usize,
}

#[derive(Debug)]
struct FlowBuffer {
    data: Vec<u8>,
    first_ts: f64,
    last_ts: f64,
    packets: u32,
    skip: usize,
}

/// Throughput counters for the three output queues plus pass-through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct QueueCounters {
    /// Data packets forwarded per class queue `[text, binary, encrypted]`.
    pub forwarded: [u64; 3],
    /// Data packets held in flow buffers awaiting classification.
    pub buffered: u64,
    /// Control/close packets passed through unclassified.
    pub passed_through: u64,
}

/// The Iustitia online classifier (Figure 1's left half).
///
/// # Examples
///
/// ```
/// use iustitia::features::{FeatureMode, TrainingMethod};
/// use iustitia::model::{train_from_corpus, ModelKind};
/// use iustitia::pipeline::{Iustitia, PipelineConfig, Verdict};
/// use iustitia_corpus::CorpusBuilder;
/// use iustitia_entropy::FeatureWidths;
/// use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
/// use std::net::Ipv4Addr;
///
/// // Offline: train on 32-byte prefixes of a labeled corpus.
/// let corpus = CorpusBuilder::new(1).files_per_class(20).size_range(512, 2048).build();
/// let model = train_from_corpus(
///     &corpus,
///     &FeatureWidths::svm_selected(),
///     TrainingMethod::Prefix { b: 32 },
///     FeatureMode::Exact,
///     &ModelKind::paper_cart(),
///     1,
/// );
/// let mut iustitia = Iustitia::new(model, PipelineConfig::headline(1));
///
/// // Online: the first data packet already carries ≥ 32 bytes.
/// let tuple = FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), 9999, Ipv4Addr::new(10, 0, 0, 2), 443);
/// let packet = Packet {
///     timestamp: 0.0,
///     tuple,
///     flags: TcpFlags::ACK,
///     payload: b"the cat sat on the mat and then sat again onward".to_vec(),
/// };
/// assert!(matches!(iustitia.process_packet(&packet), Verdict::Classified(_)));
/// ```
#[derive(Debug)]
pub struct Iustitia {
    config: PipelineConfig,
    model: NatureModel,
    cdb: ClassificationDatabase,
    buffers: HashMap<FlowId, FlowBuffer>,
    extractor: FeatureExtractor,
    rng: StdRng,
    queues: QueueCounters,
    log: Vec<ClassifiedFlow>,
}

impl Iustitia {
    /// Builds a pipeline around a trained model.
    pub fn new(model: NatureModel, config: PipelineConfig) -> Self {
        let extractor =
            FeatureExtractor::new(config.widths.clone(), config.mode.clone(), config.seed);
        let cdb = ClassificationDatabase::new(config.cdb);
        let rng = StdRng::seed_from_u64(config.seed ^ 0xDEFE45E);
        Iustitia {
            config,
            model,
            cdb,
            buffers: HashMap::new(),
            extractor,
            rng,
            queues: QueueCounters::default(),
            log: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The classification database (read access for monitoring).
    pub fn cdb(&self) -> &ClassificationDatabase {
        &self.cdb
    }

    /// Output-queue counters.
    pub fn queues(&self) -> &QueueCounters {
        &self.queues
    }

    /// Number of flows currently buffering (pre-classification).
    pub fn pending_flows(&self) -> usize {
        self.buffers.len()
    }

    /// Drains the per-flow classification log (each entry carries the
    /// `c` and `τ_b` quantities of the delay analysis).
    pub fn take_log(&mut self) -> Vec<ClassifiedFlow> {
        std::mem::take(&mut self.log)
    }

    /// Total bytes to buffer before classifying: `b` plus the header
    /// allowance.
    pub fn buffer_capacity(&self) -> usize {
        self.config.buffer_size + self.config.header_policy.allowance()
    }

    /// Processes one packet, returning what happened to it.
    pub fn process_packet(&mut self, packet: &Packet) -> Verdict {
        let id = FlowId::of_tuple(&packet.tuple);
        let now = packet.timestamp;

        if packet.flags.closes_flow() {
            self.cdb.remove_on_close(&id);
            // A close while still buffering classifies what we have.
            if self.buffers.contains_key(&id) {
                self.classify_flow(id, now);
            }
            self.queues.passed_through += 1;
            return Verdict::Ignored;
        }
        if !packet.is_data() {
            self.queues.passed_through += 1;
            return Verdict::Ignored;
        }

        if let Some(label) = self.cdb.lookup(&id, now) {
            self.queues.forwarded[label.index()] += 1;
            return Verdict::Hit(label);
        }

        // Buffer the payload.
        let capacity = self.buffer_capacity();
        let skip = match self.config.header_policy {
            HeaderPolicy::RandomSkip { t_max } => self.rng.gen_range(0..=t_max),
            _ => 0,
        };
        let buf = self.buffers.entry(id).or_insert_with(|| FlowBuffer {
            data: Vec::with_capacity(capacity.min(4096)),
            first_ts: now,
            last_ts: now,
            packets: 0,
            skip,
        });
        let room = capacity.saturating_sub(buf.data.len());
        buf.data.extend_from_slice(&packet.payload[..room.min(packet.payload.len())]);
        buf.packets += 1;
        buf.last_ts = now;
        self.queues.buffered += 1;

        if buf.data.len() >= capacity {
            match self.classify_flow(id, now) {
                Some(label) => Verdict::Classified(label),
                None => Verdict::Ignored,
            }
        } else {
            Verdict::Buffering
        }
    }

    /// Classifies every flow whose buffer has been idle longer than the
    /// configured timeout (call periodically with the current time).
    /// Returns the number of flows classified.
    pub fn flush_idle(&mut self, now: f64) -> usize {
        let idle: Vec<FlowId> = self
            .buffers
            .iter()
            .filter(|(_, b)| now - b.last_ts > self.config.idle_timeout)
            .map(|(&id, _)| id)
            .collect();
        let n = idle.len();
        for id in idle {
            self.classify_flow(id, now);
        }
        n
    }

    /// Classifies and evicts one buffered flow (used by full-buffer,
    /// idle, and close paths).
    fn classify_flow(&mut self, id: FlowId, now: f64) -> Option<FileClass> {
        let buf = self.buffers.remove(&id)?;
        let payload = self.effective_payload(&buf);
        if payload.is_empty() {
            return None;
        }
        let features = self.extractor.extract(payload);
        let label = self.model.predict(&features);
        self.cdb.insert(id, label, now);
        self.queues.forwarded[label.index()] += buf.packets as u64;
        self.log.push(ClassifiedFlow {
            id,
            label,
            packets: buf.packets,
            fill_time: buf.last_ts - buf.first_ts,
            buffered_bytes: buf.data.len(),
        });
        Some(label)
    }

    /// Applies the header policy to a buffered prefix, yielding the `b`
    /// bytes that the entropy vector is computed over.
    fn effective_payload<'a>(&self, buf: &'a FlowBuffer) -> &'a [u8] {
        let b = self.config.buffer_size;
        let data = &buf.data[..];
        let start = match self.config.header_policy {
            HeaderPolicy::None => 0,
            HeaderPolicy::SkipThreshold { t } => t.min(data.len()),
            HeaderPolicy::RandomSkip { .. } => buf.skip.min(data.len()),
            HeaderPolicy::StripKnown { t } => match strip_application_header(data) {
                Some((_, offset)) => offset.min(data.len()),
                None => t.min(data.len()),
            },
        };
        let end = (start + b).min(data.len());
        &data[start..end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iustitia_netsim::{FiveTuple, TcpFlags};
    use std::net::Ipv4Addr;

    /// A CART model trained on `b`-byte prefixes of a real synthetic
    /// corpus, so its decision bands match what `b`-byte buffers can
    /// actually produce (h1 of a 32-byte window is capped at
    /// log2(32)/8 ≈ 0.625).
    fn trained_model(b: usize) -> NatureModel {
        let corpus = iustitia_corpus::CorpusBuilder::new(33)
            .files_per_class(80)
            .size_range(1024, 4096)
            .build();
        crate::model::train_from_corpus(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            crate::features::TrainingMethod::Prefix { b },
            crate::features::FeatureMode::Exact,
            &crate::model::ModelKind::paper_cart(),
            33,
        )
    }

    fn toy_model() -> NatureModel {
        trained_model(32)
    }

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple::tcp(Ipv4Addr::new(10, 0, 0, 1), port, Ipv4Addr::new(10, 0, 0, 2), 443)
    }

    fn data_packet(port: u16, t: f64, payload: &[u8]) -> Packet {
        Packet { timestamp: t, tuple: tuple(port), flags: TcpFlags::ACK, payload: payload.to_vec() }
    }

    fn text_payload(n: usize) -> Vec<u8> {
        b"the cat sat on the mat and the dog ran off with the hat. "
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    fn encrypted_payload(n: usize) -> Vec<u8> {
        let mut x = 0x0123_4567_89AB_CDEFu64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 40) as u8
            })
            .collect()
    }

    #[test]
    fn classifies_when_buffer_fills_then_hits_cdb() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(1));
        let p1 = data_packet(1000, 0.0, &text_payload(16));
        assert_eq!(ius.process_packet(&p1), Verdict::Buffering);
        let p2 = data_packet(1000, 0.1, &text_payload(16));
        assert_eq!(ius.process_packet(&p2), Verdict::Classified(FileClass::Text));
        let p3 = data_packet(1000, 0.2, &text_payload(100));
        assert_eq!(ius.process_packet(&p3), Verdict::Hit(FileClass::Text));
        assert_eq!(ius.cdb().len(), 1);
        assert_eq!(ius.pending_flows(), 0);
        let log = ius.take_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].packets, 2);
        assert!((log[0].fill_time - 0.1).abs() < 1e-9);
    }

    #[test]
    fn encrypted_flow_labeled_encrypted() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(2));
        let p = data_packet(2000, 0.0, &encrypted_payload(64));
        assert_eq!(ius.process_packet(&p), Verdict::Classified(FileClass::Encrypted));
    }

    #[test]
    fn control_packets_pass_through() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(3));
        let syn = Packet { timestamp: 0.0, tuple: tuple(1), flags: TcpFlags::SYN, payload: vec![] };
        assert_eq!(ius.process_packet(&syn), Verdict::Ignored);
        assert_eq!(ius.queues().passed_through, 1);
    }

    #[test]
    fn fin_removes_cdb_record() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(4));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(64)));
        assert_eq!(ius.cdb().len(), 1);
        let fin = Packet {
            timestamp: 1.0,
            tuple: tuple(1),
            flags: TcpFlags::FIN | TcpFlags::ACK,
            payload: vec![],
        };
        assert_eq!(ius.process_packet(&fin), Verdict::Ignored);
        assert_eq!(ius.cdb().len(), 0);
    }

    #[test]
    fn close_during_buffering_classifies_partial() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(5));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(16)));
        assert_eq!(ius.pending_flows(), 1);
        let rst = Packet { timestamp: 0.5, tuple: tuple(1), flags: TcpFlags::RST, payload: vec![] };
        ius.process_packet(&rst);
        assert_eq!(ius.pending_flows(), 0);
        // Classified from the 16 bytes we had, then removed by the RST
        // itself? No: close removes CDB record *before* classification
        // of leftovers inserts it, so the record remains.
        assert_eq!(ius.take_log().len(), 1);
    }

    #[test]
    fn idle_flush_classifies_stalled_flows() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(6));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(8)));
        assert_eq!(ius.flush_idle(1.0), 0, "not idle long enough");
        assert_eq!(ius.flush_idle(10.0), 1);
        assert_eq!(ius.pending_flows(), 0);
        assert_eq!(ius.take_log().len(), 1);
    }

    #[test]
    fn strip_known_header_classifies_payload_not_header() {
        let model = trained_model(64);
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::StripKnown { t: 128 },
            ..PipelineConfig::headline(7)
        };
        let mut ius = Iustitia::new(model, config);
        // HTTP header (text) followed by ciphertext payload.
        let mut payload =
            b"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\r\n".to_vec();
        let header_len = payload.len();
        payload.extend_from_slice(&encrypted_payload(ius.buffer_capacity()));
        let verdict = ius.process_packet(&data_packet(1, 0.0, &payload));
        assert_eq!(
            verdict,
            Verdict::Classified(FileClass::Encrypted),
            "header {header_len}B must be ignored"
        );
    }

    #[test]
    fn skip_threshold_ignores_prefix_padding() {
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::SkipThreshold { t: 100 },
            ..PipelineConfig::headline(8)
        };
        let mut ius = Iustitia::new(trained_model(64), config);
        // 100 bytes of text "padding", then ciphertext.
        let mut payload = text_payload(100);
        payload.extend_from_slice(&encrypted_payload(64));
        let verdict = ius.process_packet(&data_packet(1, 0.0, &payload));
        assert_eq!(verdict, Verdict::Classified(FileClass::Encrypted));
    }

    #[test]
    fn buffer_capacity_includes_allowance() {
        let config = PipelineConfig {
            buffer_size: 32,
            header_policy: HeaderPolicy::SkipThreshold { t: 1468 },
            ..PipelineConfig::headline(9)
        };
        let ius = Iustitia::new(toy_model(), config);
        assert_eq!(ius.buffer_capacity(), 1500);
    }

    #[test]
    fn udp_flows_classify_like_tcp() {
        use std::net::Ipv4Addr;
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(11));
        let tuple = iustitia_netsim::FiveTuple::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            53,
            Ipv4Addr::new(5, 6, 7, 8),
            5060,
        );
        let p =
            Packet { timestamp: 0.0, tuple, flags: TcpFlags::empty(), payload: text_payload(64) };
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
        assert_eq!(ius.cdb().len(), 1);
    }

    #[test]
    fn estimated_mode_pipeline_classifies() {
        use iustitia_entropy::EstimatorConfig;
        let config = PipelineConfig {
            buffer_size: 1024,
            mode: crate::features::FeatureMode::Estimated(EstimatorConfig::svm_optimal()),
            ..PipelineConfig::headline(12)
        };
        // Model trained on exact features of 1024-byte prefixes;
        // estimated features at matched parameters stay close.
        let mut ius = Iustitia::new(trained_model(1024), config);
        let p = data_packet(7, 0.0, &encrypted_payload(1024));
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
    }

    #[test]
    fn random_skip_adds_allowance() {
        let config = PipelineConfig {
            buffer_size: 64,
            header_policy: HeaderPolicy::RandomSkip { t_max: 256 },
            ..PipelineConfig::headline(13)
        };
        let ius = Iustitia::new(toy_model(), config);
        assert_eq!(ius.buffer_capacity(), 320);
    }

    #[test]
    fn oversized_first_packet_is_truncated_to_capacity() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(14));
        let p = data_packet(9, 0.0, &text_payload(5000));
        assert!(matches!(ius.process_packet(&p), Verdict::Classified(_)));
        let log = ius.take_log();
        assert_eq!(log[0].buffered_bytes, 32);
    }

    #[test]
    fn queue_counters_accumulate() {
        let mut ius = Iustitia::new(toy_model(), PipelineConfig::headline(10));
        ius.process_packet(&data_packet(1, 0.0, &text_payload(64)));
        ius.process_packet(&data_packet(1, 0.1, &text_payload(10)));
        ius.process_packet(&data_packet(1, 0.2, &text_payload(10)));
        assert_eq!(ius.queues().forwarded[FileClass::Text.index()], 3);
    }
}
