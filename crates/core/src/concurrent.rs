//! Sharded, multi-threaded deployment of the Iustitia pipeline.
//!
//! The paper targets "rigid time and space requirements in high speed
//! routers" (§1.2). A single [`Iustitia`]
//! engine is single-threaded; on a multi-core middlebox the standard
//! scaling pattern is *flow sharding*: hash each packet's flow ID to one
//! of `N` worker threads, each owning an independent pipeline (CDB +
//! buffers). Because all per-flow state is partitioned by the same
//! hash, no state is shared between workers and no locks sit on the
//! packet path; a mutex guards only the cold verdict-statistics
//! aggregation.
//!
//! # Examples
//!
//! ```
//! use iustitia::concurrent::ShardedIustitia;
//! use iustitia::features::{FeatureMode, TrainingMethod};
//! use iustitia::model::{train_from_corpus, ModelKind};
//! use iustitia::pipeline::PipelineConfig;
//! use iustitia_corpus::CorpusBuilder;
//! use iustitia_entropy::FeatureWidths;
//! use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};
//!
//! let corpus = CorpusBuilder::new(1).files_per_class(15).size_range(512, 2048).build();
//! let model = train_from_corpus(
//!     &corpus,
//!     &FeatureWidths::svm_selected(),
//!     TrainingMethod::Prefix { b: 32 },
//!     FeatureMode::Exact,
//!     &ModelKind::paper_cart(),
//!     1,
//! )
//! .expect("balanced corpus");
//!
//! let sharded = ShardedIustitia::new(model, PipelineConfig::headline(1), 4);
//! let mut config = TraceConfig::small_test(2);
//! config.content = ContentMode::SizesOnly;
//! let report = sharded.process_stream(TraceGenerator::new(config));
//! assert!(report.flows_classified > 0);
//! assert_eq!(report.shards, 4);
//! ```

use std::sync::{mpsc, Mutex, PoisonError};
use std::thread;

use crate::cdb::FlowId;
use crate::model::NatureModel;
use crate::pipeline::{ClassifiedFlow, Iustitia, PipelineConfig, Verdict};
use iustitia_netsim::Packet;

/// Aggregated outcome of a sharded run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardedReport {
    /// Number of worker shards used.
    pub shards: usize,
    /// Packets processed across all shards.
    pub packets: u64,
    /// CDB hits across all shards.
    pub hits: u64,
    /// Flows classified across all shards.
    pub flows_classified: u64,
    /// Per-flow classification records from every shard.
    pub log: Vec<ClassifiedFlow>,
    /// Final CDB sizes per shard.
    pub cdb_sizes: Vec<usize>,
}

/// A fleet of flow-sharded Iustitia pipelines.
#[derive(Debug)]
pub struct ShardedIustitia {
    model: NatureModel,
    config: PipelineConfig,
    shards: usize,
}

impl ShardedIustitia {
    /// Creates a sharded deployment with `shards` worker pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(model: NatureModel, config: PipelineConfig, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        ShardedIustitia { model, config, shards }
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard a flow lands on; see [`shard_index`].
    pub fn shard_of(&self, id: &FlowId) -> usize {
        shard_index(id, self.shards)
    }

    /// Runs a packet stream through the sharded fleet and aggregates
    /// the results. Packets are dispatched by flow hash, so per-flow
    /// ordering is preserved within each shard.
    pub fn process_stream<I>(&self, packets: I) -> ShardedReport
    where
        I: IntoIterator<Item = Packet>,
    {
        let results: Mutex<ShardedReport> = Mutex::new(ShardedReport {
            shards: self.shards,
            cdb_sizes: vec![0; self.shards],
            ..ShardedReport::default()
        });

        thread::scope(|scope| {
            let mut senders = Vec::with_capacity(self.shards);
            for shard in 0..self.shards {
                let (tx, rx) = mpsc::sync_channel::<Packet>(1024);
                senders.push(tx);
                let results = &results;
                let model = self.model.clone();
                let mut config = self.config.clone();
                // Decorrelate per-shard RNG streams (random-skip offsets,
                // estimator sampling).
                config.seed = config.seed.wrapping_add(shard as u64);
                scope.spawn(move || {
                    let mut pipeline = Iustitia::new(model, config);
                    let mut packets = 0u64;
                    let mut hits = 0u64;
                    let mut last_t = 0.0f64;
                    for packet in rx {
                        last_t = packet.timestamp;
                        packets += 1;
                        if let Verdict::Hit(_) = pipeline.process_packet(&packet) {
                            hits += 1;
                        }
                    }
                    pipeline.sweep_idle(last_t + pipeline.config().idle_timeout + 1.0);
                    let log = pipeline.take_log();
                    // A poisoned lock means a sibling shard panicked; its
                    // partial report is still aggregable, and the panic
                    // itself re-surfaces when thread::scope joins.
                    let mut agg = results.lock().unwrap_or_else(PoisonError::into_inner);
                    agg.packets += packets;
                    agg.hits += hits;
                    agg.flows_classified += log.len() as u64;
                    agg.log.extend(log);
                    agg.cdb_sizes[shard] = pipeline.cdb().len();
                });
            }

            for packet in packets {
                let shard = self.shard_of(&FlowId::of_tuple(&packet.tuple));
                // A send fails only if the worker panicked; that panic
                // re-surfaces when thread::scope joins, so dropping the
                // packet here never silently loses the failure.
                let _ = senders[shard].send(packet);
            }
            drop(senders); // close channels; workers drain and exit
        });

        results.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The shard a flow lands on: the first bytes of its 160-bit flow hash,
/// reduced mod `shards` — the same uniform partitioning an RSS-style
/// NIC queue would apply. Shared by [`ShardedIustitia`] and the
/// `iustitia-serve` worker pool so both deployments agree on placement.
///
/// # Panics
///
/// Panics if `shards == 0`.
pub fn shard_index(id: &FlowId, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut prefix = [0u8; 8];
    prefix.copy_from_slice(&id.0[..8]);
    (u64::from_be_bytes(prefix) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{FeatureMode, TrainingMethod};
    use crate::model::{train_from_corpus, ModelKind};
    use iustitia_corpus::CorpusBuilder;
    use iustitia_entropy::FeatureWidths;
    use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};

    fn model() -> NatureModel {
        let corpus = CorpusBuilder::new(5).files_per_class(25).size_range(1024, 4096).build();
        train_from_corpus(
            &corpus,
            &FeatureWidths::svm_selected(),
            TrainingMethod::Prefix { b: 32 },
            FeatureMode::Exact,
            &ModelKind::paper_cart(),
            5,
        )
        .expect("train")
    }

    fn trace(seed: u64, n_flows: usize) -> TraceConfig {
        let mut c = TraceConfig::small_test(seed);
        c.n_flows = n_flows;
        c.content = ContentMode::SizesOnly;
        c
    }

    #[test]
    fn sharded_run_covers_all_packets() {
        let sharded = ShardedIustitia::new(model(), PipelineConfig::headline(1), 4);
        let packets: Vec<_> = TraceGenerator::new(trace(1, 120)).collect();
        let n = packets.len() as u64;
        let report = sharded.process_stream(packets);
        assert_eq!(report.packets, n);
        assert!(report.flows_classified > 0);
        assert_eq!(report.cdb_sizes.len(), 4);
    }

    #[test]
    fn sharded_equals_single_shard_on_flow_counts() {
        // With identical pipelines, total classifications must not
        // depend on the shard count (flows never straddle shards).
        let packets: Vec<_> = TraceGenerator::new(trace(2, 100)).collect();
        let one = ShardedIustitia::new(model(), PipelineConfig::headline(2), 1)
            .process_stream(packets.clone());
        let four =
            ShardedIustitia::new(model(), PipelineConfig::headline(2), 4).process_stream(packets);
        assert_eq!(one.flows_classified, four.flows_classified);
        assert_eq!(one.hits, four.hits);
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        let sharded = ShardedIustitia::new(model(), PipelineConfig::headline(3), 7);
        for b in 0..40u8 {
            let id = FlowId([b; 20]);
            let s1 = sharded.shard_of(&id);
            let s2 = sharded.shard_of(&id);
            assert_eq!(s1, s2);
            assert!(s1 < 7);
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        ShardedIustitia::new(model(), PipelineConfig::headline(4), 0);
    }
}
