//! Adversarial padding and the two defenses of §4.6.
//!
//! An attacker who knows that Iustitia classifies the first `b` bytes of
//! a flow can prepend "deceiving padding" — e.g. encrypted-looking bytes
//! in front of a binary exploit payload — to land the flow in a queue
//! with laxer inspection. The paper proposes two mitigations:
//!
//! 1. **Random skip** — buffer begins at a random offset in `[0, T]`
//!    ([`crate::pipeline::HeaderPolicy::RandomSkip`]), so the attacker
//!    cannot know which bytes are scored.
//! 2. **Periodic reclassification** — CDB records expire after a TTL
//!    ([`crate::cdb::CdbConfig::reclassify_after`]), so a long-lived
//!    flow is eventually re-scored on its *current* content.
//!
//! This module provides the attacker side so the defenses can be
//! evaluated end-to-end.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use iustitia_corpus::FileClass;

/// Builds an adversarial flow: `padding_len` bytes imitating
/// `decoy_class`, followed by the true payload.
///
/// # Examples
///
/// ```
/// use iustitia::defense::pad_flow;
/// use iustitia_corpus::FileClass;
///
/// let true_payload = vec![0x90u8; 100]; // NOP sled (binary)
/// let flow = pad_flow(&true_payload, FileClass::Encrypted, 64, 1);
/// assert_eq!(flow.len(), 164);
/// assert_eq!(&flow[64..], &true_payload[..]);
/// ```
pub fn pad_flow(payload: &[u8], decoy_class: FileClass, padding_len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = iustitia_corpus::generate_file(decoy_class, padding_len, &mut rng);
    out.extend_from_slice(payload);
    out
}

/// Probability that a random-skip defense with threshold `t_max` starts
/// the buffer beyond `padding_len` bytes of decoy padding (i.e. the
/// classifier scores true content). Uniform skip in `[0, t_max]`.
pub fn skip_evasion_probability(padding_len: usize, t_max: usize) -> f64 {
    if t_max == 0 {
        return if padding_len == 0 { 1.0 } else { 0.0 };
    }
    if padding_len > t_max {
        // Skip can never clear the padding entirely; partial credit is
        // ignored in this conservative bound.
        return 0.0;
    }
    (t_max - padding_len + 1) as f64 / (t_max + 1) as f64
}

/// A simple padding attacker model for experiments: draws padding
/// lengths and decoy classes.
#[derive(Debug, Clone)]
pub struct PaddingAttacker {
    rng: StdRng,
    /// Maximum padding the attacker is willing to waste per flow.
    pub max_padding: usize,
    /// The class the attacker imitates.
    pub decoy: FileClass,
}

impl PaddingAttacker {
    /// Creates an attacker imitating `decoy` with paddings up to
    /// `max_padding` bytes.
    pub fn new(decoy: FileClass, max_padding: usize, seed: u64) -> Self {
        PaddingAttacker { rng: StdRng::seed_from_u64(seed), max_padding, decoy }
    }

    /// Produces one adversarial flow for the given true payload.
    pub fn attack(&mut self, payload: &[u8]) -> Vec<u8> {
        let len = self.rng.gen_range(0..=self.max_padding);
        let seed = self.rng.gen();
        pad_flow(payload, self.decoy, len, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ModelKind, NatureModel};
    use crate::pipeline::{HeaderPolicy, Iustitia, PipelineConfig, Verdict};
    #[allow(unused_imports)]
    use iustitia_ml::Dataset;
    use iustitia_netsim::{FiveTuple, Packet, TcpFlags};
    use std::net::Ipv4Addr;

    fn trained_model(b: usize) -> NatureModel {
        let corpus = iustitia_corpus::CorpusBuilder::new(44)
            .files_per_class(40)
            .size_range(1024, 4096)
            .build();
        crate::model::train_from_corpus(
            &corpus,
            &iustitia_entropy::FeatureWidths::svm_selected(),
            crate::features::TrainingMethod::Prefix { b },
            crate::features::FeatureMode::Exact,
            &ModelKind::paper_cart(),
            44,
        )
        .expect("train")
    }

    fn text_payload(n: usize) -> Vec<u8> {
        b"dear sir, please find the attached invoice for your records. "
            .iter()
            .cycle()
            .take(n)
            .copied()
            .collect()
    }

    #[test]
    fn padding_deceives_naive_pipeline() {
        // Text flow fronted by encrypted padding → misclassified
        // encrypted under HeaderPolicy::None.
        let mut ius = Iustitia::new(trained_model(32), PipelineConfig::headline(1));
        let adversarial = pad_flow(&text_payload(400), FileClass::Encrypted, 64, 9);
        let p = Packet {
            timestamp: 0.0,
            tuple: FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 80),
            flags: TcpFlags::ACK,
            payload: adversarial,
        };
        assert_eq!(ius.process_packet(&p), Verdict::Classified(FileClass::Encrypted));
    }

    #[test]
    fn random_skip_defeats_short_padding_often() {
        // With T = 512 and 64 bytes of padding, most skips land in true
        // content: P = (512-64+1)/513 ≈ 0.875.
        let mut defended = 0;
        for seed in 0..40u64 {
            let config = PipelineConfig {
                buffer_size: 64,
                header_policy: HeaderPolicy::RandomSkip { t_max: 512 },
                ..PipelineConfig::headline(seed)
            };
            let mut ius = Iustitia::new(trained_model(64), config);
            let adversarial = pad_flow(&text_payload(800), FileClass::Encrypted, 64, seed);
            let p = Packet {
                timestamp: 0.0,
                tuple: FiveTuple::tcp(Ipv4Addr::new(1, 1, 1, 1), 5, Ipv4Addr::new(2, 2, 2, 2), 80),
                flags: TcpFlags::ACK,
                payload: adversarial,
            };
            if ius.process_packet(&p) == Verdict::Classified(FileClass::Text) {
                defended += 1;
            }
        }
        assert!(defended >= 25, "defended {defended}/40");
    }

    #[test]
    fn evasion_probability_formula() {
        assert_eq!(skip_evasion_probability(0, 0), 1.0);
        assert_eq!(skip_evasion_probability(10, 0), 0.0);
        assert_eq!(skip_evasion_probability(600, 512), 0.0);
        let p = skip_evasion_probability(64, 512);
        assert!((p - 449.0 / 513.0).abs() < 1e-12);
    }

    #[test]
    fn attacker_varies_padding() {
        let mut attacker = PaddingAttacker::new(FileClass::Encrypted, 128, 3);
        let payload = text_payload(64);
        let flows: Vec<Vec<u8>> = (0..10).map(|_| attacker.attack(&payload)).collect();
        let lens: std::collections::HashSet<usize> = flows.iter().map(|f| f.len()).collect();
        assert!(lens.len() > 3, "padding lengths should vary");
        for f in &flows {
            assert!(f.ends_with(&payload));
        }
    }
}
