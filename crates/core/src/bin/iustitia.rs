//! `iustitia` — command-line interface to the flow-nature classifier.
//!
//! ```text
//! iustitia train    [--model cart|svm] [--buffer B] [--per-class N] [--seed S] --out PATH
//! iustitia classify --model PATH [--buffer B] FILE...
//! iustitia entropy  FILE...
//! iustitia simulate --model PATH [--flows N] [--buffer B] [--seed S]
//! ```
//!
//! `train` synthesizes a labeled corpus and fits a model on `H_b`
//! prefix vectors; `classify` labels on-disk files from their first `B`
//! bytes; `entropy` prints the full `h1..h10` entropy vector of each
//! file; `simulate` drives a synthetic gateway trace through the online
//! pipeline and reports CDB/queue statistics.

use std::process::ExitCode;

use iustitia::features::{FeatureExtractor, FeatureMode, TrainingMethod};
use iustitia::model::{train_from_corpus, ModelKind, NatureModel};
use iustitia::pipeline::{Iustitia, PipelineConfig, Verdict};
use iustitia_corpus::CorpusBuilder;
use iustitia_entropy::{entropy_vector, FeatureWidths};
use iustitia_netsim::{ContentMode, TraceConfig, TraceGenerator};

const USAGE: &str = "\
usage:
  iustitia train    [--model cart|svm] [--buffer B] [--per-class N] [--seed S] --out PATH
  iustitia classify --model PATH [--buffer B] FILE...
  iustitia entropy  FILE...
  iustitia simulate --model PATH [--flows N] [--buffer B] [--seed S]
";

/// Tiny flag parser: collects `--key value` pairs and positionals.
struct Args {
    flags: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut flags = Vec::new();
        let mut positional = Vec::new();
        let mut it = raw.iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value =
                    it.next().ok_or_else(|| format!("flag --{key} needs a value"))?.clone();
                flags.push((key.to_string(), value));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { flags, positional })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value for --{key}: {v}")),
        }
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = raw.split_first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = match Args::parse(rest) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cmd_train(&args),
        "classify" => cmd_classify(&args),
        "entropy" => cmd_entropy(&args),
        "simulate" => cmd_simulate(&args),
        other => Err(format!("unknown command: {other}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args.get("out").ok_or("train requires --out PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    let per_class: usize = args.get_parsed("per-class", 150)?;
    let seed: u64 = args.get_parsed("seed", 42u64)?;
    let kind = match args.get("model").unwrap_or("svm") {
        "cart" => ModelKind::paper_cart(),
        "svm" => ModelKind::paper_svm(),
        other => return Err(format!("unknown model kind: {other} (use cart|svm)")),
    };

    eprintln!("synthesizing corpus ({per_class} files/class) and training at b={b}...");
    let corpus = CorpusBuilder::new(seed).files_per_class(per_class).size_range(1024, 16384).build();
    let model = train_from_corpus(
        &corpus,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        &kind,
        seed,
    );

    // Hold-out estimate so the user knows what they got.
    let test = CorpusBuilder::new(seed ^ 0xA5A5)
        .files_per_class(per_class / 3 + 1)
        .size_range(1024, 16384)
        .build();
    let test_ds = iustitia::features::dataset_from_corpus(
        &test,
        &FeatureWidths::svm_selected(),
        TrainingMethod::Prefix { b },
        FeatureMode::Exact,
        seed ^ 1,
    );
    eprintln!("hold-out accuracy: {:.1}%", 100.0 * model.accuracy_on(&test_ds));

    model.save(out).map_err(|e| e.to_string())?;
    eprintln!("model written to {out}");
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let model_path = args.get("model").ok_or("classify requires --model PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    if args.positional.is_empty() {
        return Err("classify requires at least one FILE".into());
    }
    let model = NatureModel::load(model_path).map_err(|e| e.to_string())?;
    let mut fx = FeatureExtractor::new(FeatureWidths::svm_selected(), FeatureMode::Exact, 0);
    for path in &args.positional {
        let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let prefix = &data[..b.min(data.len())];
        let label = model.predict(&fx.extract(prefix));
        println!("{label}\t{path}");
    }
    Ok(())
}

fn cmd_entropy(args: &Args) -> Result<(), String> {
    if args.positional.is_empty() {
        return Err("entropy requires at least one FILE".into());
    }
    println!("file\t{}", (1..=10).map(|k| format!("h{k}")).collect::<Vec<_>>().join("\t"));
    for path in &args.positional {
        let data = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let v = entropy_vector(&data, &iustitia_entropy::vector::FULL_WIDTHS);
        let cells: Vec<String> = v.iter().map(|h| format!("{h:.4}")).collect();
        println!("{path}\t{}", cells.join("\t"));
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let model_path = args.get("model").ok_or("simulate requires --model PATH")?;
    let b: usize = args.get_parsed("buffer", 32)?;
    let flows: usize = args.get_parsed("flows", 500)?;
    let seed: u64 = args.get_parsed("seed", 7u64)?;
    let model = NatureModel::load(model_path).map_err(|e| e.to_string())?;

    let mut config = TraceConfig::small_test(seed);
    config.n_flows = flows;
    config.content = ContentMode::Realistic;
    let mut pipeline = Iustitia::new(
        model,
        PipelineConfig { buffer_size: b, ..PipelineConfig::headline(seed) },
    );

    let mut hits = 0u64;
    let mut classified = 0u64;
    let mut packets = 0u64;
    for packet in TraceGenerator::new(config) {
        packets += 1;
        match pipeline.process_packet(&packet) {
            Verdict::Hit(_) => hits += 1,
            Verdict::Classified(_) => classified += 1,
            _ => {}
        }
    }
    println!("packets:            {packets}");
    println!("flows classified:   {classified}");
    println!("cdb hits:           {hits}");
    println!("live cdb records:   {}", pipeline.cdb().len());
    println!("queues (t/b/e):     {:?}", pipeline.queues().forwarded);
    let stats = pipeline.cdb().stats();
    println!(
        "cdb churn:          {} inserted, {} closed, {} timed out",
        stats.inserted, stats.removed_by_close, stats.removed_by_timeout
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::Args;

    fn args(raw: &[&str]) -> Result<Args, String> {
        Args::parse(&raw.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = args(&["--model", "m.json", "file1", "--buffer", "64", "file2"]).unwrap();
        assert_eq!(a.get("model"), Some("m.json"));
        assert_eq!(a.get_parsed("buffer", 0usize).unwrap(), 64);
        assert_eq!(a.positional, vec!["file1", "file2"]);
    }

    #[test]
    fn later_flags_win() {
        let a = args(&["--buffer", "32", "--buffer", "128"]).unwrap();
        assert_eq!(a.get_parsed("buffer", 0usize).unwrap(), 128);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(args(&["--model"]).is_err());
    }

    #[test]
    fn invalid_numeric_value_is_an_error() {
        let a = args(&["--buffer", "not-a-number"]).unwrap();
        assert!(a.get_parsed("buffer", 0usize).is_err());
    }

    #[test]
    fn defaults_apply_when_flag_absent() {
        let a = args(&[]).unwrap();
        assert_eq!(a.get_parsed("buffer", 32usize).unwrap(), 32);
        assert_eq!(a.get("model"), None);
    }
}
