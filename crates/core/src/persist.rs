//! Trained-model persistence.
//!
//! Training the paper's SVM takes minutes of CPU at full corpus scale;
//! a deployment (Figure 1's *online process*) should load the finished
//! model in milliseconds instead. Models serialize to JSON — large for
//! an SVM with many support vectors, but auditable and stable across
//! versions of this crate's internals that keep the same shape.

use std::fs;
use std::io;
use std::path::Path;

use crate::model::NatureModel;

/// Errors from saving or loading a model.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file exists but does not parse as a model.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model file i/o failed: {e}"),
            PersistError::Format(e) => write!(f, "model file is not a valid model: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

impl NatureModel {
    /// Serializes the model to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] if serialization fails (which
    /// only happens on pathological float values).
    pub fn to_json(&self) -> Result<String, PersistError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserializes a model from a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Format`] on malformed input.
    pub fn from_json(json: &str) -> Result<NatureModel, PersistError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes the model to a file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// # use iustitia::model::{ModelKind, NatureModel};
    /// # use iustitia_ml::Dataset;
    /// # let mut ds = Dataset::new(1, iustitia_corpus::FileClass::names());
    /// # for i in 0..12 { ds.push(vec![i as f64], i % 4); }
    /// # let model = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
    /// model.save("iustitia-model.json")?;
    /// let restored = NatureModel::load("iustitia-model.json")?;
    /// # Ok::<(), iustitia::persist::PersistError>(())
    /// ```
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PersistError> {
        fs::write(path, self.to_json()?)?;
        Ok(())
    }

    /// Reads a model back from a file.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] if the file cannot be read and
    /// [`PersistError::Format`] if it does not contain a valid model.
    pub fn load(path: impl AsRef<Path>) -> Result<NatureModel, PersistError> {
        NatureModel::from_json(&fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelKind;
    use iustitia_corpus::FileClass;
    use iustitia_ml::svm::{Kernel, SvmParams};
    use iustitia_ml::Dataset;

    fn toy_dataset() -> Dataset {
        let mut ds = Dataset::new(2, FileClass::names());
        for i in 0..30 {
            let x = i as f64 / 30.0;
            ds.push(vec![0.2 + x * 0.1, 0.1], 0);
            ds.push(vec![0.5 + x * 0.1, 0.5], 1);
            ds.push(vec![0.8 + x * 0.1, 0.9], 2);
            ds.push(vec![0.75 + x * 0.1, 0.95], 3);
        }
        ds
    }

    #[test]
    fn cart_round_trips_through_json() {
        let ds = toy_dataset();
        let model = NatureModel::train(&ds, &ModelKind::paper_cart()).expect("train");
        let json = model.to_json().expect("serializable");
        let restored = NatureModel::from_json(&json).expect("parseable");
        assert_eq!(model, restored);
        for (x, _) in ds.iter() {
            assert_eq!(model.predict(x), restored.predict(x));
        }
    }

    #[test]
    fn svm_round_trips_through_json() {
        let ds = toy_dataset();
        let params =
            SvmParams { c: 10.0, kernel: Kernel::Rbf { gamma: 5.0 }, ..Default::default() };
        let model = NatureModel::train(&ds, &ModelKind::Svm(params)).expect("train");
        let restored = NatureModel::from_json(&model.to_json().expect("ok")).expect("ok");
        for (x, _) in ds.iter() {
            assert_eq!(model.predict(x), restored.predict(x));
        }
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join(format!("iustitia-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        let model = NatureModel::train(&toy_dataset(), &ModelKind::paper_cart()).expect("train");
        model.save(&path).expect("save");
        let restored = NatureModel::load(&path).expect("load");
        assert_eq!(model, restored);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = NatureModel::load("/definitely/not/here.json").expect_err("missing");
        assert!(matches!(err, PersistError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_garbage_is_format_error() {
        let err = NatureModel::from_json("{not json").expect_err("garbage");
        assert!(matches!(err, PersistError::Format(_)));
        assert!(std::error::Error::source(&err).is_some());
    }
}
